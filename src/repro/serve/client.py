"""Thin stdlib HTTP client for a running ``repro serve`` daemon.

Wraps :mod:`urllib.request` so the CLI (``repro submit`` / ``repro jobs``)
and tests talk to the service without any new dependency.  Error responses
raise :class:`ServeError` carrying the HTTP status and the server's decoded
JSON error payload, so callers can distinguish "queue full, retry" (429)
from "bad sweep" (400).

Transient failures are retried transparently with capped exponential backoff
and deterministic jitter: **429** and **503** responses (honoring the
server's ``Retry-After`` header) and connection-level errors (daemon
restarting, socket reset) are re-attempted up to ``retries`` extra times
before the final :class:`ServeError` surfaces.  Definitive errors — 400 bad
sweep, 404 unknown job — are never retried.  Jitter is derived from
``(retry_seed, request, attempt)`` via the same machinery as the engine's
:class:`~repro.engine.executor.RetryPolicy`, so client behavior in chaos
tests is reproducible.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.engine.executor import RetryPolicy
from repro.serve.api import DEFAULT_HOST, DEFAULT_PORT
from repro.serve.jobstore import TERMINAL_STATES

__all__ = ["ServeClient", "ServeError", "JobFailedError", "DEFAULT_URL"]

DEFAULT_URL = f"http://{DEFAULT_HOST}:{DEFAULT_PORT}"

#: HTTP statuses that mean "try the same request again shortly".
_RETRYABLE_STATUSES = (429, 503)


class ServeError(RuntimeError):
    """An error response (or connection failure) from the serve daemon."""

    def __init__(self, message: str, status: int = 0, payload: dict | None = None):
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class JobFailedError(ServeError):
    """A job reached a *failed*/*cancelled* terminal state.

    Raised by :meth:`ServeClient.wait` so callers can tell "the campaign
    finished badly" apart from transport-level :class:`ServeError`\\ s (which
    carry an HTTP status).  Carries the full job document and the
    quarantined-point list — exactly which runs were given up on and why.
    """

    def __init__(self, job: dict):
        self.job = dict(job)
        self.state = str(job.get("state", ""))
        self.quarantined = [dict(entry) for entry in job.get("quarantined", ())]
        detail = job.get("error") or job.get("note") or ""
        labels = ", ".join(
            str(entry.get("label", "?")) for entry in self.quarantined[:3]
        )
        if labels:
            more = len(self.quarantined) - 3
            detail += f" (quarantined: {labels}{f' +{more} more' if more > 0 else ''})"
        message = f"job {job.get('job_id', '?')} {self.state}"
        super().__init__(
            f"{message}: {detail}" if detail else message,
            status=0,
            payload=self.job,
        )


class ServeClient:
    """Talks JSON to one daemon; every method maps to one endpoint.

    Parameters
    ----------
    retries:
        Extra attempts after the first for retryable failures (429/503/
        connection errors).  ``0`` disables retrying entirely.
    backoff_s / backoff_cap_s:
        Exponential backoff base and ceiling between attempts; a server
        ``Retry-After`` hint raises (never lowers) the computed delay, still
        capped at ``backoff_cap_s``.
    retry_seed:
        Seed for the deterministic backoff jitter.
    client:
        Self-declared client identity, sent as ``X-Repro-Client`` on every
        request — the key the daemon's per-client admission quota charges.
        Empty means anonymous (all anonymous callers share one quota bucket).
    """

    def __init__(
        self,
        url: str = DEFAULT_URL,
        timeout: float = 30.0,
        retries: int = 3,
        backoff_s: float = 0.2,
        backoff_cap_s: float = 3.0,
        retry_seed: int = 0,
        client: str = "",
    ):
        self.url = url.rstrip("/")
        self.timeout = timeout
        self.client = str(client)
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.retries = retries
        self._backoff = RetryPolicy(
            max_attempts=retries + 1,
            backoff_s=backoff_s,
            backoff_cap_s=backoff_cap_s,
            seed=retry_seed,
        )

    # ------------------------------------------------------------- plumbing
    def _request(self, method: str, path: str, payload: dict | None = None):
        key = f"{method} {path}"
        for attempt in range(1, self.retries + 2):
            final = attempt > self.retries
            try:
                return self._request_once(method, path, payload)
            except ServeError as exc:
                retryable = exc.status in _RETRYABLE_STATUSES or exc.status == 0
                if final or not retryable:
                    raise
                delay = self._backoff.delay_s(attempt, key=key)
                retry_after = exc.payload.get("retry_after")
                if retry_after is not None:
                    delay = max(delay, float(retry_after))
                time.sleep(min(delay, self._backoff.backoff_cap_s))
        raise AssertionError("unreachable")  # loop always returns or raises

    def _request_once(self, method: str, path: str, payload: dict | None = None):
        data = json.dumps(payload).encode() if payload is not None else None
        headers = {"Content-Type": "application/json"} if data else {}
        if self.client:
            headers["X-Repro-Client"] = self.client
        request = urllib.request.Request(
            f"{self.url}{path}", data=data, method=method, headers=headers
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                body = response.read()
                content_type = response.headers.get("Content-Type", "")
        except urllib.error.HTTPError as exc:
            try:
                error_payload = json.loads(exc.read() or b"{}")
            except json.JSONDecodeError:
                error_payload = {}
            retry_after = exc.headers.get("Retry-After") if exc.headers else None
            if retry_after is not None:
                try:
                    error_payload.setdefault("retry_after", float(retry_after))
                except ValueError:
                    pass
            message = error_payload.get("error", f"HTTP {exc.code}")
            raise ServeError(message, status=exc.code, payload=error_payload) from exc
        except (urllib.error.URLError, OSError) as exc:
            raise ServeError(
                f"cannot reach repro serve at {self.url}: {exc}"
            ) from exc
        if "text/plain" in content_type:
            return body.decode()
        return json.loads(body) if body else {}

    # ------------------------------------------------------------ endpoints
    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def submit(self, sweep: dict) -> dict:
        """``POST /sweeps``; raises :class:`ServeError` with status 429 when full.

        A 429 is retried with backoff first (it is the service saying "soon");
        the error only surfaces once the retry budget is spent.
        """
        return self._request("POST", "/sweeps", payload=sweep)

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def events(self, job_id: str) -> list[str]:
        text = self._request("GET", f"/jobs/{job_id}/events")
        return [line for line in str(text).splitlines() if line]

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def results(self, job_id: str) -> dict:
        return self._request("GET", f"/results/{job_id}")

    # ----------------------------------------------------------- federation
    def nodes(self) -> list[dict]:
        return self._request("GET", "/nodes")["nodes"]

    def register_node(
        self, node_id: str, workers: int = 1, host: str = "", pid: int | None = None
    ) -> dict:
        return self._request(
            "POST",
            "/nodes",
            payload={"node_id": node_id, "workers": workers, "host": host, "pid": pid},
        )

    def node_heartbeat(self, node_id: str) -> dict:
        return self._request("POST", f"/nodes/{node_id}/heartbeat", payload={})

    def drain_node(self, node_id: str) -> dict:
        return self._request("POST", f"/nodes/{node_id}/drain", payload={})

    def deregister_node(self, node_id: str) -> dict:
        return self._request("POST", f"/nodes/{node_id}/deregister", payload={})

    def claim_leases(self, node_id: str, max_runs: int = 1) -> list[dict]:
        answer = self._request(
            "POST", "/leases", payload={"node_id": node_id, "max_runs": max_runs}
        )
        return list(answer.get("leases", ()))

    def renew_lease(self, lease_id: str, node_id: str, token: str) -> dict:
        return self._request(
            "POST",
            f"/leases/{lease_id}/renew",
            payload={"node_id": node_id, "token": token},
        )

    def upload_result(
        self, lease_id: str, node_id: str, token: str, record: dict
    ) -> dict:
        return self._request(
            "POST",
            f"/leases/{lease_id}/result",
            payload={"node_id": node_id, "token": token, "record": record},
        )

    # ------------------------------------------------------------ streaming
    def stream_events(self, job_id: str, longpoll: bool = False):
        """Yield the job's progress lines live until it reaches a terminal state.

        Consumes the chunked ``?follow=1`` stream (``longpoll=True`` asks for
        the unframed fallback instead); ``: keep-alive`` comment lines are
        filtered out.  The per-read socket timeout is ``self.timeout`` — the
        server's keep-alive cadence (~1s) keeps an idle but healthy stream
        alive indefinitely, while a dead daemon still times out.
        """
        query = "follow=1&longpoll=1" if longpoll else "follow=1"
        headers = {"X-Repro-Client": self.client} if self.client else {}
        request = urllib.request.Request(
            f"{self.url}/jobs/{job_id}/events?{query}", headers=headers
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                for raw in response:
                    line = raw.decode(errors="replace").rstrip("\n")
                    if not line or line.startswith(":"):
                        continue  # blank or keep-alive comment
                    yield line
        except urllib.error.HTTPError as exc:
            try:
                payload = json.loads(exc.read() or b"{}")
            except json.JSONDecodeError:
                payload = {}
            raise ServeError(
                payload.get("error", f"HTTP {exc.code}"), status=exc.code,
                payload=payload,
            ) from exc
        except (urllib.error.URLError, OSError) as exc:
            raise ServeError(
                f"event stream for job {job_id} broke: {exc}"
            ) from exc

    # ------------------------------------------------------------ waiting
    def wait(
        self,
        job_id: str,
        timeout: float | None = None,
        poll_s: float = 0.3,
        max_poll_s: float = 2.0,
        on_event=None,
        raise_on_failure: bool = True,
    ) -> dict:
        """Poll until the job reaches a terminal state; returns its document.

        ``on_event`` (if given) receives every *new* progress line exactly
        once as the wait progresses — the CLI uses it to mirror the sweep
        command's live per-point output.

        The poll interval starts at ``poll_s`` and grows 1.5× per idle poll
        up to ``max_poll_s``, resetting whenever the job makes progress — so
        short jobs stay snappy and long waits do not hammer the daemon.

        A job ending ``failed`` or ``cancelled`` raises
        :class:`JobFailedError` (carrying the job document and its
        quarantined-point list) so callers cannot mistake a bad campaign for
        a good one; pass ``raise_on_failure=False`` to get the terminal
        document back regardless, as earlier versions did.  Transport
        problems keep raising plain :class:`ServeError` — the two failure
        modes are now different types.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        seen = 0
        interval = poll_s
        last_done = -1
        while True:
            if on_event is not None:
                events = self.events(job_id)
                for line in events[seen:]:
                    on_event(line)
                if len(events) > seen:
                    interval = poll_s  # progress: poll eagerly again
                seen = len(events)
            job = self.job(job_id)
            if job["state"] in TERMINAL_STATES:
                if on_event is not None:
                    for line in self.events(job_id)[seen:]:
                        on_event(line)
                if raise_on_failure and job["state"] in ("failed", "cancelled"):
                    raise JobFailedError(job)
                return job
            if job.get("done", 0) != last_done:
                last_done = job.get("done", 0)
                interval = poll_s
            if deadline is not None and time.monotonic() > deadline:
                raise ServeError(
                    f"timed out after {timeout}s waiting for job {job_id} "
                    f"({job['done']}/{job['total']} points done)"
                )
            time.sleep(interval)
            interval = min(interval * 1.5, max_poll_s)
