"""Thin stdlib HTTP client for a running ``repro serve`` daemon.

Wraps :mod:`urllib.request` so the CLI (``repro submit`` / ``repro jobs``)
and tests talk to the service without any new dependency.  Error responses
raise :class:`ServeError` carrying the HTTP status and the server's decoded
JSON error payload, so callers can distinguish "queue full, retry" (429)
from "bad sweep" (400).

Transient failures are retried transparently with capped exponential backoff
and deterministic jitter: **429** and **503** responses (honoring the
server's ``Retry-After`` header) and connection-level errors (daemon
restarting, socket reset) are re-attempted up to ``retries`` extra times
before the final :class:`ServeError` surfaces.  Definitive errors — 400 bad
sweep, 404 unknown job — are never retried.  Jitter is derived from
``(retry_seed, request, attempt)`` via the same machinery as the engine's
:class:`~repro.engine.executor.RetryPolicy`, so client behavior in chaos
tests is reproducible.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request

from repro.engine.executor import RetryPolicy
from repro.serve.api import DEFAULT_HOST, DEFAULT_PORT
from repro.serve.jobstore import TERMINAL_STATES

__all__ = ["ServeClient", "ServeError", "DEFAULT_URL"]

DEFAULT_URL = f"http://{DEFAULT_HOST}:{DEFAULT_PORT}"

#: HTTP statuses that mean "try the same request again shortly".
_RETRYABLE_STATUSES = (429, 503)


class ServeError(RuntimeError):
    """An error response (or connection failure) from the serve daemon."""

    def __init__(self, message: str, status: int = 0, payload: dict | None = None):
        super().__init__(message)
        self.status = status
        self.payload = payload or {}


class ServeClient:
    """Talks JSON to one daemon; every method maps to one endpoint.

    Parameters
    ----------
    retries:
        Extra attempts after the first for retryable failures (429/503/
        connection errors).  ``0`` disables retrying entirely.
    backoff_s / backoff_cap_s:
        Exponential backoff base and ceiling between attempts; a server
        ``Retry-After`` hint raises (never lowers) the computed delay, still
        capped at ``backoff_cap_s``.
    retry_seed:
        Seed for the deterministic backoff jitter.
    """

    def __init__(
        self,
        url: str = DEFAULT_URL,
        timeout: float = 30.0,
        retries: int = 3,
        backoff_s: float = 0.2,
        backoff_cap_s: float = 3.0,
        retry_seed: int = 0,
    ):
        self.url = url.rstrip("/")
        self.timeout = timeout
        if retries < 0:
            raise ValueError(f"retries must be >= 0, got {retries}")
        self.retries = retries
        self._backoff = RetryPolicy(
            max_attempts=retries + 1,
            backoff_s=backoff_s,
            backoff_cap_s=backoff_cap_s,
            seed=retry_seed,
        )

    # ------------------------------------------------------------- plumbing
    def _request(self, method: str, path: str, payload: dict | None = None):
        key = f"{method} {path}"
        for attempt in range(1, self.retries + 2):
            final = attempt > self.retries
            try:
                return self._request_once(method, path, payload)
            except ServeError as exc:
                retryable = exc.status in _RETRYABLE_STATUSES or exc.status == 0
                if final or not retryable:
                    raise
                delay = self._backoff.delay_s(attempt, key=key)
                retry_after = exc.payload.get("retry_after")
                if retry_after is not None:
                    delay = max(delay, float(retry_after))
                time.sleep(min(delay, self._backoff.backoff_cap_s))
        raise AssertionError("unreachable")  # loop always returns or raises

    def _request_once(self, method: str, path: str, payload: dict | None = None):
        data = json.dumps(payload).encode() if payload is not None else None
        request = urllib.request.Request(
            f"{self.url}{path}",
            data=data,
            method=method,
            headers={"Content-Type": "application/json"} if data else {},
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as response:
                body = response.read()
                content_type = response.headers.get("Content-Type", "")
        except urllib.error.HTTPError as exc:
            try:
                error_payload = json.loads(exc.read() or b"{}")
            except json.JSONDecodeError:
                error_payload = {}
            retry_after = exc.headers.get("Retry-After") if exc.headers else None
            if retry_after is not None:
                try:
                    error_payload.setdefault("retry_after", float(retry_after))
                except ValueError:
                    pass
            message = error_payload.get("error", f"HTTP {exc.code}")
            raise ServeError(message, status=exc.code, payload=error_payload) from exc
        except (urllib.error.URLError, OSError) as exc:
            raise ServeError(
                f"cannot reach repro serve at {self.url}: {exc}"
            ) from exc
        if "text/plain" in content_type:
            return body.decode()
        return json.loads(body) if body else {}

    # ------------------------------------------------------------ endpoints
    def health(self) -> dict:
        return self._request("GET", "/healthz")

    def submit(self, sweep: dict) -> dict:
        """``POST /sweeps``; raises :class:`ServeError` with status 429 when full.

        A 429 is retried with backoff first (it is the service saying "soon");
        the error only surfaces once the retry budget is spent.
        """
        return self._request("POST", "/sweeps", payload=sweep)

    def jobs(self) -> list[dict]:
        return self._request("GET", "/jobs")["jobs"]

    def job(self, job_id: str) -> dict:
        return self._request("GET", f"/jobs/{job_id}")

    def events(self, job_id: str) -> list[str]:
        text = self._request("GET", f"/jobs/{job_id}/events")
        return [line for line in str(text).splitlines() if line]

    def cancel(self, job_id: str) -> dict:
        return self._request("POST", f"/jobs/{job_id}/cancel")

    def results(self, job_id: str) -> dict:
        return self._request("GET", f"/results/{job_id}")

    # ------------------------------------------------------------ waiting
    def wait(
        self,
        job_id: str,
        timeout: float | None = None,
        poll_s: float = 0.3,
        max_poll_s: float = 2.0,
        on_event=None,
    ) -> dict:
        """Poll until the job reaches a terminal state; returns its document.

        ``on_event`` (if given) receives every *new* progress line exactly
        once as the wait progresses — the CLI uses it to mirror the sweep
        command's live per-point output.

        The poll interval starts at ``poll_s`` and grows 1.5× per idle poll
        up to ``max_poll_s``, resetting whenever the job makes progress — so
        short jobs stay snappy and long waits do not hammer the daemon.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        seen = 0
        interval = poll_s
        last_done = -1
        while True:
            if on_event is not None:
                events = self.events(job_id)
                for line in events[seen:]:
                    on_event(line)
                if len(events) > seen:
                    interval = poll_s  # progress: poll eagerly again
                seen = len(events)
            job = self.job(job_id)
            if job["state"] in TERMINAL_STATES:
                if on_event is not None:
                    for line in self.events(job_id)[seen:]:
                        on_event(line)
                return job
            if job.get("done", 0) != last_done:
                last_done = job.get("done", 0)
                interval = poll_s
            if deadline is not None and time.monotonic() > deadline:
                raise ServeError(
                    f"timed out after {timeout}s waiting for job {job_id} "
                    f"({job['done']}/{job['total']} points done)"
                )
            time.sleep(interval)
            interval = min(interval * 1.5, max_poll_s)
