"""Multi-process worker pool shared by every submitted sweep.

This is the serve-side implementation of the
:class:`~repro.engine.executor.StreamExecutor` interface: N long-lived worker
processes pull ``(token, RunSpec)`` tasks from one shared queue, so points
from concurrently submitted sweeps interleave freely (work-stealing across
sweeps) instead of each sweep spinning up its own process pool.

Durability properties:

* each worker writes its finished record **through the result cache before
  reporting completion** — with read-back verification, so a completion
  report implies the result is durably on disk even when a fault corrupts the
  first write attempts.  A daemon (or worker) killed at any moment loses at
  most the runs physically in flight; everything completed is already
  content-addressed on disk and will be served as a cache hit on resume;
* workers announce each run *before* executing it (``started`` message with
  their pid) and heartbeat while idle, so the scheduler knows exactly which
  worker hosts which run — that is what makes per-run wall-clock deadlines
  enforceable (:meth:`WorkerPool.kill_for`) and lets :meth:`WorkerPool.reap`
  name the precise tokens a dead worker took with it instead of forcing the
  service to requeue everything outstanding;
* workers ignore SIGINT and treat SIGTERM as "finish the current run, then
  exit", so a graceful daemon shutdown never tears a cache write;
* dead workers are replaced up to a respawn budget; past it the pool keeps
  serving with fewer workers and reports itself ``degraded`` through
  :meth:`health` (surfaced by ``/healthz`` and ``repro jobs``) instead of
  failing silently.

Workers are spawned (not forked): the daemon process runs HTTP handler
threads, and forking a threaded process is unreliable; spawn also guarantees
each worker starts from a clean interpreter, exactly like a fresh CLI run —
including re-reading ``REPRO_FAULTS`` so fault plans propagate.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_module
import signal
import time
from time import monotonic
from typing import Hashable, Iterator

from repro.engine.cache import ResultCache
from repro.engine.executor import RunBackend, execute_run
from repro.engine.records import RunRecord
from repro.engine.spec import RunSpec
from repro.utils.validation import check_positive_int
from repro.version import __version__

__all__ = ["WorkerPool", "worker_main"]

_STOP = None  # queue sentinel asking a worker to exit

#: Seconds between idle-worker heartbeat messages.
_HEARTBEAT_S = 2.0


def worker_main(
    task_queue: mp.Queue,
    result_queue: mp.Queue,
    cache_dir: str | None,
    version: str,
) -> None:
    """Worker-process loop: pull tasks, announce, run, cache, report.

    Module-level so the spawn context can import it by reference.  The task
    payload is ``(token, spec_canonical_dict)``; everything flowing back is a
    tagged tuple — ``("started", token, pid)`` before a run executes,
    ``("heartbeat", pid, ts)`` while idle, ``("done", token, record_dict)``
    after the result is durably cached.  Plain data only crosses the process
    boundary.
    """
    stop = {"flag": False}

    def _request_stop(signum, frame):  # noqa: ARG001 — signal signature
        stop["flag"] = True

    # The daemon owns Ctrl-C; SIGTERM means "finish the current run and exit"
    # so a graceful shutdown never interrupts a cache write.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, _request_stop)

    pid = os.getpid()
    cache = ResultCache(cache_dir, version=version) if cache_dir else None
    last_beat = monotonic()
    while not stop["flag"]:
        try:
            task = task_queue.get(timeout=0.2)
        except queue_module.Empty:
            now = monotonic()
            if now - last_beat >= _HEARTBEAT_S:
                last_beat = now
                try:
                    result_queue.put(("heartbeat", pid, time.time()))
                except (ValueError, OSError):
                    break
            continue
        if task is _STOP:
            break
        token, spec_dict = task
        spec = RunSpec(
            experiment_id=str(spec_dict["experiment_id"]),
            params=dict(spec_dict.get("params", {})),
            seed=int(spec_dict.get("seed", 0)),
        )
        # Announce before executing: if this process dies mid-run the
        # scheduler knows exactly which token went down with it.
        try:
            result_queue.put(("started", token, pid))
        except (ValueError, OSError):
            break
        record = execute_run(spec, version, executor_kind="serve-worker")
        if cache is not None and record.ok:
            # Durable (and verified readable) before the completion is
            # reported.  A cache that cannot be written costs future reuse,
            # not this run — the record still reaches the scheduler, stamped
            # with the failure.
            try:
                cache.put(record, verify=True)
            except OSError as exc:
                record = record.with_provenance(cache_error=str(exc))
        try:
            result_queue.put(("done", token, record.to_dict()))
        except (ValueError, OSError):  # queue closed: daemon is gone
            break
        last_beat = monotonic()


class WorkerPool(RunBackend):
    """N spawned worker processes behind one shared task queue.

    The task queue is bounded (``2 * workers`` by default) so the scheduler
    keeps most pending work in its own per-job queues — which is what makes
    cancellation prompt (at most a queue-depth of stale tasks execute) and
    lets it interleave concurrently submitted sweeps fairly.

    The pool tracks which worker pid is executing which token (from the
    workers' ``started`` announcements), exposing :meth:`in_flight` for
    deadline sweeps, :meth:`kill_for` to terminate the worker hosting one
    overdue run, and a :meth:`reap` that returns exactly the tokens lost to
    dead workers.
    """

    kind = "worker-pool"
    backend_name = "local-pool"

    def __init__(
        self,
        workers: int = 2,
        cache_dir: str | None = None,
        version: str = __version__,
        queue_depth: int | None = None,
    ):
        self.workers = check_positive_int(workers, "workers")
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.version = version
        self._ctx = mp.get_context("spawn")
        self.queue_depth = queue_depth if queue_depth is not None else 2 * self.workers
        self.task_queue: mp.Queue = self._ctx.Queue(maxsize=self.queue_depth)
        self.result_queue: mp.Queue = self._ctx.Queue()
        self._procs: list[mp.process.BaseProcess] = []
        self._started = False
        self.respawns = 0
        #: token -> (worker pid, monotonic() at the started announcement)
        self._in_flight: dict[Hashable, tuple[int, float]] = {}
        #: worker pid -> monotonic() of its last message of any kind
        self._last_seen: dict[int, float] = {}
        #: Backstop against a respawn loop when workers die instantly and
        #: deterministically (broken environment): after this many total
        #: replacements the pool stays degraded instead of forking forever.
        self.max_respawns = 10 * self.workers

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for _ in range(self.workers):
            self._procs.append(self._spawn())

    def _spawn(self) -> mp.process.BaseProcess:
        proc = self._ctx.Process(
            target=worker_main,
            args=(self.task_queue, self.result_queue, self.cache_dir, self.version),
            daemon=True,
        )
        proc.start()
        if proc.pid is not None:
            self._last_seen[proc.pid] = monotonic()
        return proc

    def alive(self) -> int:
        """Number of live worker processes."""
        return sum(1 for proc in self._procs if proc.is_alive())

    def pids(self) -> list[int]:
        return [proc.pid for proc in self._procs if proc.pid is not None]

    @property
    def degraded(self) -> bool:
        """True once the respawn budget is spent and capacity is reduced.

        A degraded pool still serves — with however many workers survive —
        but operators should know: ``/healthz`` and ``repro jobs`` surface
        this flag instead of leaving the shrinkage silent.  A stopped pool is
        not degraded, just stopped.
        """
        return (
            self._started
            and self.respawns >= self.max_respawns
            and self.alive() < self.workers
        )

    def reap(self) -> list[Hashable]:
        """Replace dead workers; returns the tokens their deaths lost.

        A worker that died mid-run (OOM-killed, segfaulted native code,
        injected crash, or killed by :meth:`kill_for`) took its in-flight
        task with it — the caller re-dispatches exactly the returned tokens
        (and only those: runs hosted by surviving workers are untouched).
        Respawning stops once ``max_respawns`` replacements have been made;
        the pool then continues degraded rather than forking forever.
        """
        lost: list[Hashable] = []
        for index, proc in enumerate(self._procs):
            if proc.is_alive():
                continue
            dead_pid = proc.pid
            proc.join(timeout=0)
            if dead_pid is not None:
                self._last_seen.pop(dead_pid, None)
                for token, (pid, _) in list(self._in_flight.items()):
                    if pid == dead_pid:
                        del self._in_flight[token]
                        lost.append(token)
            if self.respawns < self.max_respawns:
                self._procs[index] = self._spawn()
                self.respawns += 1
        return lost

    # ------------------------------------------------------- run tracking
    def in_flight(self) -> dict[Hashable, tuple[int, float]]:
        """Snapshot of ``token -> (worker pid, started monotonic)``."""
        return dict(self._in_flight)

    def kill_for(self, token: Hashable) -> bool:
        """SIGKILL the worker hosting ``token`` (deadline enforcement).

        Returns False when the token is not currently announced as running
        (it may have just completed, or never started).  The killed worker is
        replaced by the next :meth:`reap`; the *caller* owns re-dispatching
        or quarantining the run — the token is dropped from in-flight here so
        the subsequent reap does not double-report it.
        """
        entry = self._in_flight.pop(token, None)
        if entry is None:
            return False
        pid, _ = entry
        try:
            os.kill(pid, signal.SIGKILL)
        except (OSError, ProcessLookupError):
            pass
        return True

    def health(self) -> dict:
        """Liveness summary for ``/healthz`` and ``repro jobs``."""
        now = monotonic()
        return {
            "backend": self.backend_name,
            "workers": self.workers,
            "alive": self.alive(),
            "respawns": self.respawns,
            "max_respawns": self.max_respawns,
            "degraded": self.degraded,
            "in_flight": len(self._in_flight),
            "last_heartbeat_age_s": (
                round(now - max(self._last_seen.values()), 3)
                if self._last_seen
                else None
            ),
        }

    # ----------------------------------------------------------- streaming
    def submit(self, token: Hashable, spec: RunSpec) -> None:
        """Enqueue one run (blocks while the shared queue is full)."""
        self.task_queue.put((token, spec.canonical()))

    def try_submit(self, token: Hashable, spec: RunSpec) -> bool:
        """Non-blocking :meth:`submit`; False when the shared queue is full."""
        try:
            self.task_queue.put_nowait((token, spec.canonical()))
        except queue_module.Full:
            return False
        return True

    def completions(self, timeout: float | None = None) -> Iterator[tuple[Hashable, RunRecord]]:
        """Yield ``(token, record)`` pairs as workers report completions.

        ``started`` and ``heartbeat`` messages are consumed here too — they
        update the in-flight map and liveness clocks without being yielded.
        With a timeout, stops (instead of raising) once the result queue
        stays empty for that long — the scheduler uses this as its poll tick.
        """
        while True:
            try:
                message = self.result_queue.get(timeout=timeout)
            except queue_module.Empty:
                return
            tag = message[0]
            if tag == "started":
                _, token, pid = message
                self._in_flight[token] = (pid, monotonic())
                self._last_seen[pid] = monotonic()
            elif tag == "heartbeat":
                _, pid, _ts = message
                self._last_seen[pid] = monotonic()
            elif tag == "done":
                _, token, record_dict = message
                entry = self._in_flight.pop(token, None)
                if entry is not None:
                    self._last_seen[entry[0]] = monotonic()
                yield token, RunRecord.from_dict(record_dict)
            # Unknown tags are ignored: forward compatibility over crashing
            # the scheduler thread on a version-skewed worker.

    # ------------------------------------------------------------- shutdown
    def stop(self, graceful: bool = True, timeout: float = 5.0) -> None:
        """Stop every worker; graceful lets the current runs finish.

        Graceful delivery must land one ``_STOP`` sentinel per worker even
        when the bounded task queue is full of stale work: full slots are
        shed (the tasks are abandoned — the daemon is shutting down) until
        every sentinel fits.  The previous behavior gave up on the first
        ``Full`` and left some workers to be SIGTERM'd mid-poll instead of
        exiting cleanly through their loop.
        """
        if not self._started:
            return
        if graceful:
            sentinels = len(self._procs)
            # Each iteration lands a sentinel, sheds one stale task, or waits
            # out the queue's feeder thread (an item just put counts against
            # maxsize before it is readable), so depth + workers (+ margin
            # for racing workers) bounds the loop.
            for _ in range(2 * (self.queue_depth + sentinels) + 8):
                if not sentinels:
                    break
                try:
                    self.task_queue.put_nowait(_STOP)
                    sentinels -= 1
                except queue_module.Full:
                    try:
                        self.task_queue.get_nowait()
                    except queue_module.Empty:
                        time.sleep(0.01)  # full by count, not yet readable
            for proc in self._procs:
                if proc.is_alive() and proc.pid is not None:
                    os.kill(proc.pid, signal.SIGTERM)
            for proc in self._procs:
                proc.join(timeout=timeout)
        for proc in self._procs:  # stragglers (or graceful=False): hard stop
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        self._procs.clear()
        self._in_flight.clear()
        self._last_seen.clear()
        self._started = False

    def close(self) -> None:
        self.stop(graceful=True)
