"""Multi-process worker pool shared by every submitted sweep.

This is the serve-side implementation of the
:class:`~repro.engine.executor.StreamExecutor` interface: N long-lived worker
processes pull ``(token, RunSpec)`` tasks from one shared queue, so points
from concurrently submitted sweeps interleave freely (work-stealing across
sweeps) instead of each sweep spinning up its own process pool.

Durability properties:

* each worker writes its finished record **through the result cache before
  reporting completion**, so a daemon (or worker) killed at any moment loses
  at most the runs physically in flight — everything completed is already
  content-addressed on disk and will be served as a cache hit on resume;
* workers ignore SIGINT and treat SIGTERM as "finish the current run, then
  exit", so a graceful daemon shutdown never tears a cache write;
* dead workers are detected by the scheduler (:meth:`WorkerPool.reap`) and
  replaced, and their in-flight tasks are re-dispatched by the service.

Workers are spawned (not forked): the daemon process runs HTTP handler
threads, and forking a threaded process is unreliable; spawn also guarantees
each worker starts from a clean interpreter, exactly like a fresh CLI run.
"""

from __future__ import annotations

import multiprocessing as mp
import os
import queue as queue_module
import signal
from typing import Hashable, Iterator

from repro.engine.cache import ResultCache
from repro.engine.executor import StreamExecutor, execute_run
from repro.engine.records import RunRecord
from repro.engine.spec import RunSpec
from repro.utils.validation import check_positive_int
from repro.version import __version__

__all__ = ["WorkerPool", "worker_main"]

_STOP = None  # queue sentinel asking a worker to exit


def worker_main(
    task_queue: mp.Queue,
    result_queue: mp.Queue,
    cache_dir: str | None,
    version: str,
) -> None:
    """Worker-process loop: pull tasks, run them, cache, report.

    Module-level so the spawn context can import it by reference.  The task
    payload is ``(token, spec_canonical_dict)`` and the completion payload is
    ``(token, record_dict)`` — plain data only crosses the process boundary.
    """
    stop = {"flag": False}

    def _request_stop(signum, frame):  # noqa: ARG001 — signal signature
        stop["flag"] = True

    # The daemon owns Ctrl-C; SIGTERM means "finish the current run and exit"
    # so a graceful shutdown never interrupts a cache write.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    signal.signal(signal.SIGTERM, _request_stop)

    cache = ResultCache(cache_dir, version=version) if cache_dir else None
    while not stop["flag"]:
        try:
            task = task_queue.get(timeout=0.2)
        except queue_module.Empty:
            continue
        if task is _STOP:
            break
        token, spec_dict = task
        spec = RunSpec(
            experiment_id=str(spec_dict["experiment_id"]),
            params=dict(spec_dict.get("params", {})),
            seed=int(spec_dict.get("seed", 0)),
        )
        record = execute_run(spec, version, executor_kind="serve-worker")
        if cache is not None and record.ok:
            cache.put(record)  # durable before the completion is reported
        try:
            result_queue.put((token, record.to_dict()))
        except (ValueError, OSError):  # queue closed: daemon is gone
            break


class WorkerPool(StreamExecutor):
    """N spawned worker processes behind one shared task queue.

    The task queue is bounded (``2 * workers`` by default) so the scheduler
    keeps most pending work in its own per-job queues — which is what makes
    cancellation prompt (at most a queue-depth of stale tasks execute) and
    lets it interleave concurrently submitted sweeps fairly.
    """

    kind = "worker-pool"

    def __init__(
        self,
        workers: int = 2,
        cache_dir: str | None = None,
        version: str = __version__,
        queue_depth: int | None = None,
    ):
        self.workers = check_positive_int(workers, "workers")
        self.cache_dir = str(cache_dir) if cache_dir is not None else None
        self.version = version
        self._ctx = mp.get_context("spawn")
        depth = queue_depth if queue_depth is not None else 2 * self.workers
        self.task_queue: mp.Queue = self._ctx.Queue(maxsize=depth)
        self.result_queue: mp.Queue = self._ctx.Queue()
        self._procs: list[mp.process.BaseProcess] = []
        self._started = False
        self.respawns = 0
        #: Backstop against a respawn loop when workers die instantly and
        #: deterministically (broken environment): after this many total
        #: replacements the pool stays degraded instead of forking forever.
        self.max_respawns = 10 * self.workers

    # ------------------------------------------------------------ lifecycle
    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for _ in range(self.workers):
            self._procs.append(self._spawn())

    def _spawn(self) -> mp.process.BaseProcess:
        proc = self._ctx.Process(
            target=worker_main,
            args=(self.task_queue, self.result_queue, self.cache_dir, self.version),
            daemon=True,
        )
        proc.start()
        return proc

    def alive(self) -> int:
        """Number of live worker processes."""
        return sum(1 for proc in self._procs if proc.is_alive())

    def pids(self) -> list[int]:
        return [proc.pid for proc in self._procs if proc.pid is not None]

    def reap(self) -> int:
        """Replace dead workers; returns how many had to be respawned.

        A worker that died mid-run (OOM-killed, segfaulted native code, …)
        took its in-flight task with it — the caller is responsible for
        re-dispatching unreported work (the service tracks outstanding
        tokens per job precisely for this).
        """
        respawned = 0
        for index, proc in enumerate(self._procs):
            if not proc.is_alive() and self.respawns < self.max_respawns:
                proc.join(timeout=0)
                self._procs[index] = self._spawn()
                respawned += 1
                self.respawns += 1
        return respawned

    # ----------------------------------------------------------- streaming
    def submit(self, token: Hashable, spec: RunSpec) -> None:
        """Enqueue one run (blocks while the shared queue is full)."""
        self.task_queue.put((token, spec.canonical()))

    def try_submit(self, token: Hashable, spec: RunSpec) -> bool:
        """Non-blocking :meth:`submit`; False when the shared queue is full."""
        try:
            self.task_queue.put_nowait((token, spec.canonical()))
        except queue_module.Full:
            return False
        return True

    def completions(self, timeout: float | None = None) -> Iterator[tuple[Hashable, RunRecord]]:
        """Yield ``(token, record)`` pairs as workers report them.

        With a timeout, stops (instead of raising) once the result queue
        stays empty for that long — the scheduler uses this as its poll tick.
        """
        while True:
            try:
                token, record_dict = self.result_queue.get(timeout=timeout)
            except queue_module.Empty:
                return
            yield token, RunRecord.from_dict(record_dict)

    # ------------------------------------------------------------- shutdown
    def stop(self, graceful: bool = True, timeout: float = 5.0) -> None:
        """Stop every worker; graceful lets the current runs finish."""
        if not self._started:
            return
        if graceful:
            for _ in self._procs:
                try:
                    self.task_queue.put_nowait(_STOP)
                except queue_module.Full:
                    break
            for proc in self._procs:
                if proc.is_alive() and proc.pid is not None:
                    os.kill(proc.pid, signal.SIGTERM)
            for proc in self._procs:
                proc.join(timeout=timeout)
        for proc in self._procs:  # stragglers (or graceful=False): hard stop
            if proc.is_alive():
                proc.terminate()
                proc.join(timeout=1.0)
        self._procs.clear()
        self._started = False

    def close(self) -> None:
        self.stop(graceful=True)
