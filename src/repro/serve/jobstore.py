"""Durable on-disk job store for the campaign service.

Every submitted sweep becomes one :class:`JobRecord` persisted as a JSON
document at ``<root>/<job_id>.json`` (atomic tmp-file + ``os.replace`` writes
via :func:`repro.utils.serialization.save_json`), plus a plain-text
``<job_id>.events`` sidecar of progress lines that ``GET /jobs/<id>/events``
streams.  Because every state transition is flushed atomically, a daemon
killed at any instant — including ``kill -9`` — leaves only complete job
documents behind; :meth:`JobStore.recover` then requeues whatever was
``queued``/``running`` and the service resumes it from the result cache,
re-running only the points the cache does not already hold.

Job identity is *content-addressed*: the id hashes the job's fully expanded
run specs together with the library version, so submitting the same sweep
twice (however it was spelled — grid vs. zip vs. explicit points) dedupes to
the same job, and a library upgrade naturally starts fresh jobs.
"""

from __future__ import annotations

import hashlib
import json
import threading
from dataclasses import dataclass, field, replace
from datetime import datetime, timezone
from pathlib import Path
from typing import Iterable, Mapping

from repro.engine.spec import RunSpec, canonical_json
from repro.faults import fault_point
from repro.utils.serialization import load_json, save_json
from repro.utils.validation import ValidationError
from repro.version import __version__

__all__ = [
    "JobRecord",
    "JobStore",
    "sweep_job_id",
    "ACTIVE_STATES",
    "TERMINAL_STATES",
    "JOB_STATES",
]

#: Lifecycle: ``queued -> running -> done | failed | cancelled``; terminal
#: ``failed``/``cancelled`` jobs requeue on resubmit (resume from the cache).
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")
ACTIVE_STATES = ("queued", "running")
TERMINAL_STATES = ("done", "failed", "cancelled")


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def sweep_job_id(specs: Iterable[RunSpec], version: str = __version__) -> str:
    """Content-addressed job identity: hash of the expanded specs + version."""
    digest = hashlib.sha256()
    digest.update(
        canonical_json(
            {"specs": [spec.canonical() for spec in specs], "version": version}
        ).encode()
    )
    return digest.hexdigest()[:16]


@dataclass(frozen=True)
class JobRecord:
    """One submitted sweep: identity, expanded points, state and progress.

    Attributes
    ----------
    job_id:
        Content hash of the expanded specs + library version (see
        :func:`sweep_job_id`).
    sweep:
        The sweep payload as submitted (experiment id, grid/zip/base/seeds) —
        kept for display; the authoritative work list is ``specs``.
    specs:
        Fully expanded, parameter-resolved run specs (``RunSpec.canonical()``
        dictionaries) — what the scheduler dispatches and what
        ``GET /results/<id>`` reads back through the cache.
    state:
        One of :data:`JOB_STATES`.
    total / done / executed / cache_hits / failures:
        Point accounting.  ``executed`` counts fresh runs *since the job was
        last (re)queued*, so after a crash-resume it reports exactly how many
        points the restart actually had to run.
    submits:
        How many times this job id has been submitted (dedupe counter).
    error:
        Failure summary for ``failed`` jobs.
    policy:
        Optional per-job retry-policy overrides as submitted (a partial
        :class:`~repro.engine.executor.RetryPolicy` dict: ``max_attempts``,
        ``deadline_s``, ``backoff_s``, …).  Not part of the job identity —
        the same sweep under a different policy is still the same job.
    quarantined:
        Poison runs: points that exhausted their retry budget, recorded as
        ``{"index", "label", "attempts", "error"}`` so operators can see
        exactly what was given up on and why.
    client:
        The submitting client's self-declared identity (``X-Repro-Client``
        header); the key the per-client admission quota charges.  ``""`` for
        anonymous submits.  Not part of the job identity.
    """

    job_id: str
    sweep: Mapping[str, object]
    specs: tuple[Mapping[str, object], ...]
    state: str = "queued"
    created_at: str = field(default_factory=_utc_now)
    updated_at: str = ""
    started_at: str = ""
    finished_at: str = ""
    total: int = 0
    done: int = 0
    executed: int = 0
    cache_hits: int = 0
    failures: int = 0
    submits: int = 1
    error: str | None = None
    note: str = ""
    policy: Mapping[str, object] = field(default_factory=dict)
    quarantined: tuple[Mapping[str, object], ...] = ()
    client: str = ""

    def __post_init__(self) -> None:
        if self.state not in JOB_STATES:
            raise ValidationError(
                f"unknown job state {self.state!r}; expected one of {JOB_STATES}"
            )
        object.__setattr__(self, "sweep", dict(self.sweep))
        object.__setattr__(self, "specs", tuple(dict(s) for s in self.specs))
        object.__setattr__(self, "policy", dict(self.policy))
        object.__setattr__(self, "quarantined", tuple(dict(q) for q in self.quarantined))
        if not self.total:
            object.__setattr__(self, "total", len(self.specs))

    # ------------------------------------------------------------- helpers
    @property
    def active(self) -> bool:
        return self.state in ACTIVE_STATES

    @property
    def finished(self) -> bool:
        return self.state in TERMINAL_STATES

    def run_specs(self) -> list[RunSpec]:
        """Materialize the stored spec dictionaries back into ``RunSpec``s."""
        return [
            RunSpec(
                experiment_id=str(s["experiment_id"]),
                params=dict(s.get("params", {})),  # type: ignore[arg-type]
                seed=int(s.get("seed", 0)),  # type: ignore[arg-type]
            )
            for s in self.specs
        ]

    def requeued(self, note: str = "") -> "JobRecord":
        """A copy reset for (re-)execution: counters cleared, state queued.

        Progress is *not* lost — completed points live in the result cache
        and are re-counted as cache hits when the scheduler activates the
        job, so only the missing points execute.  Quarantined points get a
        fresh chance (the quarantine list resets); the submitted retry policy
        sticks with the job.
        """
        return replace(
            self,
            state="queued",
            done=0,
            executed=0,
            cache_hits=0,
            failures=0,
            error=None,
            started_at="",
            finished_at="",
            note=note,
            quarantined=(),
            updated_at=_utc_now(),
        )

    # ------------------------------------------------------- serialization
    def to_dict(self) -> dict:
        return {
            "job_id": self.job_id,
            "sweep": dict(self.sweep),
            "specs": [dict(s) for s in self.specs],
            "state": self.state,
            "created_at": self.created_at,
            "updated_at": self.updated_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "total": self.total,
            "done": self.done,
            "executed": self.executed,
            "cache_hits": self.cache_hits,
            "failures": self.failures,
            "submits": self.submits,
            "error": self.error,
            "note": self.note,
            "policy": dict(self.policy),
            "quarantined": [dict(q) for q in self.quarantined],
            "client": self.client,
        }

    def summary(self) -> dict:
        """Compact status view (no spec list) for API listings."""
        return {
            key: value
            for key, value in self.to_dict().items()
            if key not in ("specs", "sweep")
        } | {"experiment_id": self.sweep.get("experiment_id")}

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "JobRecord":
        return cls(
            job_id=str(data["job_id"]),
            sweep=dict(data.get("sweep", {})),  # type: ignore[arg-type]
            specs=tuple(data.get("specs", ())),  # type: ignore[arg-type]
            state=str(data.get("state", "queued")),
            created_at=str(data.get("created_at", "")),
            updated_at=str(data.get("updated_at", "")),
            started_at=str(data.get("started_at", "")),
            finished_at=str(data.get("finished_at", "")),
            total=int(data.get("total", 0)),  # type: ignore[arg-type]
            done=int(data.get("done", 0)),  # type: ignore[arg-type]
            executed=int(data.get("executed", 0)),  # type: ignore[arg-type]
            cache_hits=int(data.get("cache_hits", 0)),  # type: ignore[arg-type]
            failures=int(data.get("failures", 0)),  # type: ignore[arg-type]
            submits=int(data.get("submits", 1)),  # type: ignore[arg-type]
            error=data.get("error"),  # type: ignore[arg-type]
            note=str(data.get("note", "")),
            policy=dict(data.get("policy", {})),  # type: ignore[arg-type]
            quarantined=tuple(data.get("quarantined", ())),  # type: ignore[arg-type]
            client=str(data.get("client", "")),
        )


class JobStore:
    """Filesystem-backed store of :class:`JobRecord` documents.

    All mutating operations are guarded by a re-entrant lock so the serve
    daemon's scheduler thread and HTTP handler threads can interleave safely;
    every write is an atomic tmp+rename, so concurrent *processes* (or a
    crash at any point) never expose a torn document.
    """

    def __init__(self, root: str | Path, version: str = __version__):
        self.root = Path(root)
        self.version = version
        self._lock = threading.RLock()

    # ------------------------------------------------------------- paths
    def path_for(self, job_id: str) -> Path:
        return self.root / f"{job_id}.json"

    def events_path_for(self, job_id: str) -> Path:
        return self.root / f"{job_id}.events"

    # ------------------------------------------------------------ lookups
    def get(self, job_id: str) -> JobRecord | None:
        path = self.path_for(job_id)
        if not path.is_file():
            return None
        try:
            return JobRecord.from_dict(load_json(path))
        except (json.JSONDecodeError, KeyError, TypeError, ValueError, OSError):
            return None

    def jobs(self) -> list[JobRecord]:
        """All stored jobs, oldest submission first."""
        records = []
        for path in self.root.glob("*.json"):
            try:
                records.append(JobRecord.from_dict(load_json(path)))
            except (json.JSONDecodeError, KeyError, TypeError, ValueError, OSError):
                continue
        return sorted(records, key=lambda job: (job.created_at, job.job_id))

    # ------------------------------------------------------------ mutation
    def save(self, job: JobRecord) -> JobRecord:
        """Persist one job document, verified by read-back.

        Every state transition flows through here, so a torn or corrupt
        write would silently lose job progress.  After each write the
        document is read back and re-parsed; a write that does not verify is
        retried (bounded), and the ``jobstore.save`` fault point lets chaos
        tests inject exactly the corrupt/ENOSPC writes this loop defends
        against.
        """
        job = replace(job, updated_at=_utc_now())
        path = self.path_for(job.job_id)
        document = job.to_dict()
        with self._lock:
            last_error: Exception | None = None
            for _ in range(3):
                try:
                    effect = fault_point("jobstore.save", key=job.job_id)
                    if effect == "corrupt_write":
                        text = json.dumps(document)
                        path.parent.mkdir(parents=True, exist_ok=True)
                        path.write_text(text[: max(1, len(text) // 3)])
                    else:
                        save_json(path, document)
                    JobRecord.from_dict(load_json(path))
                except (json.JSONDecodeError, KeyError, TypeError, ValueError, OSError) as exc:
                    last_error = exc
                    continue
                return job
            raise OSError(f"job store write failed for {path}: {last_error}")

    def update(self, job_id: str, **fields: object) -> JobRecord:
        """Atomically load-modify-save one job (thread-safe read-modify-write)."""
        with self._lock:
            job = self.get(job_id)
            if job is None:
                raise KeyError(f"unknown job {job_id!r}")
            return self.save(replace(job, **fields))  # type: ignore[arg-type]

    # ------------------------------------------------------------- events
    def append_event(self, job_id: str, line: str) -> None:
        """Append one progress line to the job's event log (single-writer)."""
        with self._lock:
            path = self.events_path_for(job_id)
            path.parent.mkdir(parents=True, exist_ok=True)
            with open(path, "a") as handle:
                handle.write(line.rstrip("\n") + "\n")

    def events(self, job_id: str) -> list[str]:
        path = self.events_path_for(job_id)
        if not path.is_file():
            return []
        return path.read_text().splitlines()

    def clear_events(self, job_id: str) -> None:
        path = self.events_path_for(job_id)
        if path.is_file():
            path.unlink()

    # ------------------------------------------------------------ recovery
    def recover(self) -> list[JobRecord]:
        """Requeue every job a previous daemon left ``queued``/``running``.

        Called once at service start.  Returns the requeued jobs; completed
        points are not re-run — the scheduler finds them in the result cache
        when it activates each job.
        """
        requeued = []
        with self._lock:
            for job in self.jobs():
                if job.state in ACTIVE_STATES:
                    note = (
                        "resumed after restart"
                        if job.state == "running" or job.done
                        else job.note
                    )
                    job = self.save(job.requeued(note=note))
                    if note:
                        self.append_event(job.job_id, f"-- {note} --")
                    requeued.append(job)
        return requeued
