"""Multi-node worker federation: lease-based remote execution backends.

The PR 6/7 service runs every point on one host's :class:`WorkerPool` — one
crashed or partitioned machine takes the whole campaign capacity with it.
This module federates workers across nodes while keeping the scheduler's
failure policy (attempt budgets, backoff, quarantine) exactly as strong:

* :class:`FederationBackend` — the coordinator side.  A
  :class:`~repro.engine.executor.RunBackend` whose capacity is the registered
  remote nodes: the scheduler submits runs into a *claimable pool*; node
  agents pull them as **time-bounded leases** (``POST /leases``), renew them
  by heartbeat while executing, and upload results with the lease's secret
  token.  The backend is the single source of truth for lease state:

  - an **expired** lease (missed renewals — node crashed, hung, or
    partitioned) is reclaimed and surfaced through :meth:`reap`, so the
    scheduler charges the run one attempt and re-dispatches it, exactly as
    for a dead local worker (*at-least-once* dispatch);
  - an upload whose lease token no longer matches is **fenced** with
    :class:`FencedLeaseError` — a stale node returning after a partition
    cannot clobber a newer result or double-charge a run's attempt budget.
    Together with the content-addressed result cache (a re-dispatched run
    recomputes the byte-identical record into the same cache slot),
    completion is *effectively exactly-once*;
  - a node that misses ``node_timeout_s`` of heartbeats is declared **dead**:
    all its leases requeue at once and ``/healthz`` reports the node dead
    until it re-registers (a healed partition re-registers under a bumped
    generation — its old lease tokens stay fenced);
  - a node that repeatedly poisons runs (failed uploads + expired leases) is
    **quarantined**: it gets no new leases, and the cluster reports itself
    ``degraded`` so operators see the capacity loss.

* :class:`NodeAgent` — the remote side (``repro node --coordinator URL``).
  Registers with the coordinator, drives a local :class:`WorkerPool`, claims
  leases to fill it, heartbeats, renews held leases, and uploads finished
  records (retrying transient failures; dropping fenced ones).  Graceful
  drain — requested locally (SIGTERM) or remotely (``POST /nodes/<id>/drain``,
  relayed through the heartbeat response) — finishes the leased runs, uploads
  them, deregisters and exits.  The ``node.heartbeat`` / ``node.lease_renew``
  / ``node.upload`` fault points fire on the network-send side, so chaos
  plans make partitions, lost renewals and torn uploads deterministically
  injectable per node.
"""

from __future__ import annotations

import json
import os
import queue as queue_module
import socket
import threading
import urllib.error
import urllib.request
from collections import deque
from dataclasses import dataclass, field
from datetime import datetime, timezone
from time import monotonic
from typing import Hashable, Iterator

from repro.engine.cache import ResultCache
from repro.engine.executor import RunBackend, failure_record
from repro.engine.records import RunRecord
from repro.engine.spec import RunSpec
from repro.faults import InjectedFault, fault_point
from repro.utils.validation import check_positive_int
from repro.version import __version__

__all__ = [
    "FederationBackend",
    "FencedLeaseError",
    "Lease",
    "NodeAgent",
    "NodeGoneError",
    "NodeRecord",
    "UnknownNodeError",
]


def _utc_now() -> str:
    return datetime.now(timezone.utc).isoformat(timespec="seconds")


def _spec_from_canonical(data: dict) -> RunSpec:
    return RunSpec(
        experiment_id=str(data["experiment_id"]),
        params=dict(data.get("params", {})),
        seed=int(data.get("seed", 0)),
    )


class UnknownNodeError(KeyError):
    """The node id was never registered with this coordinator."""


class NodeGoneError(RuntimeError):
    """The node is registered but declared dead — it must re-register.

    The HTTP layer maps this to **410 Gone**; an agent receiving it after a
    healed partition re-registers (bumping its generation) before claiming
    new work.  Its previous leases were already requeued when it was declared
    dead, and their tokens stay fenced forever.
    """


class FencedLeaseError(RuntimeError):
    """The lease token no longer grants write access to this run.

    Raised on renew/upload when the lease expired and was reclaimed, was
    revoked by a deadline kill, or belongs to a previous node generation.
    The HTTP layer maps this to **409 Conflict**; the agent drops the work —
    the coordinator already owns the run's retry.
    """


@dataclass
class Lease:
    """One claimed run: who executes it, under which secret, until when."""

    lease_id: str
    token: str  #: fencing secret; uploads/renewals must echo it exactly
    node_id: str
    run_token: Hashable  #: the scheduler's (job_id, index) dispatch token
    spec: dict  #: RunSpec.canonical() payload shipped to the node
    label: str
    granted_at: float  #: monotonic
    deadline: float  #: monotonic; renewals push it forward
    renewals: int = 0


@dataclass
class NodeRecord:
    """Coordinator-side view of one registered node agent."""

    node_id: str
    workers: int
    host: str = ""
    pid: int | None = None
    registered_at: str = field(default_factory=_utc_now)
    generation: int = 1
    last_seen: float = field(default_factory=monotonic)
    state: str = "alive"  #: alive | dead | left
    draining: bool = False
    quarantined: bool = False
    leases: set = field(default_factory=set)  #: lease ids currently held
    completed: int = 0
    failed: int = 0  #: uploads whose record was not ok (poison evidence)
    expired_leases: int = 0  #: leases lost to missed renewals / death

    @property
    def eligible(self) -> bool:
        """May this node claim new leases right now?"""
        return (
            self.state == "alive" and not self.draining and not self.quarantined
        )

    def status(self) -> str:
        if self.state != "alive":
            return self.state
        if self.quarantined:
            return "quarantined"
        if self.draining:
            return "draining"
        return "alive"

    def summary(self, now: float | None = None) -> dict:
        now = monotonic() if now is None else now
        return {
            "node_id": self.node_id,
            "state": self.status(),
            "draining": self.draining,
            "quarantined": self.quarantined,
            "workers": self.workers,
            "leases": len(self.leases),
            "completed": self.completed,
            "failed": self.failed,
            "expired_leases": self.expired_leases,
            "generation": self.generation,
            "host": self.host,
            "pid": self.pid,
            "registered_at": self.registered_at,
            "last_heartbeat_age_s": round(now - self.last_seen, 3),
        }


class FederationBackend(RunBackend):
    """Remote nodes behind the :class:`~repro.engine.executor.RunBackend` API.

    The scheduler drives this exactly like the local pool: ``try_submit``
    succeeds while registered, eligible nodes have spare worker slots;
    ``completions`` yields what nodes upload; ``in_flight``/``kill_for``/
    ``reap`` give the failure policy the same levers it has over local
    workers (a *kill* here revokes the lease — the node's eventual upload is
    fenced instead of SIGKILLed, with the same effect on accounting).

    All entry points are thread-safe: HTTP handler threads (register/claim/
    renew/upload) interleave with the scheduler thread (submit/reap/drain).
    """

    kind = "federation"
    backend_name = "federation"

    def __init__(
        self,
        cache_dir: str | None = None,
        version: str = __version__,
        lease_ttl_s: float = 15.0,
        heartbeat_s: float = 2.0,
        node_timeout_s: float | None = None,
        quarantine_after: int = 5,
    ):
        if lease_ttl_s <= 0 or heartbeat_s <= 0:
            raise ValueError("lease_ttl_s and heartbeat_s must be positive")
        self.version = version
        self.cache = ResultCache(cache_dir, version=version) if cache_dir else None
        self.lease_ttl_s = float(lease_ttl_s)
        self.heartbeat_s = float(heartbeat_s)
        #: A node whose last message is older than this is declared dead and
        #: its leases requeue.  Default: five missed heartbeats.
        self.node_timeout_s = (
            float(node_timeout_s) if node_timeout_s is not None else 5.0 * heartbeat_s
        )
        self.quarantine_after = check_positive_int(quarantine_after, "quarantine_after")
        self._lock = threading.RLock()
        self._nodes: dict[str, NodeRecord] = {}
        #: Runs submitted by the scheduler, waiting for a node to claim them.
        self._claimable: deque = deque()  # (run_token, spec_dict, label)
        self._leases: dict[str, Lease] = {}
        self._by_token: dict[Hashable, str] = {}  # run_token -> lease_id
        self._completions: queue_module.Queue = queue_module.Queue()
        self._lost: list = []  #: run tokens reclaimed since the last reap()

    # ------------------------------------------------------- node lifecycle
    def register_node(
        self,
        node_id: str = "",
        workers: int = 1,
        host: str = "",
        pid: int | None = None,
    ) -> dict:
        """Register (or revive) a node; returns the lease/heartbeat config.

        Re-registration under a known id bumps the node's *generation* and
        revives it — the path a partitioned node takes after its heartbeats
        start landing again and it learns it was declared dead.  Its old
        leases were requeued at death and stay fenced; drain and quarantine
        flags survive revival (a poisoned node cannot launder its record by
        reconnecting).
        """
        workers = check_positive_int(workers, "workers")
        with self._lock:
            node_id = str(node_id) or f"node-{os.urandom(4).hex()}"
            node = self._nodes.get(node_id)
            if node is None:
                node = NodeRecord(node_id=node_id, workers=workers, host=host, pid=pid)
                self._nodes[node_id] = node
            else:
                node.generation += 1
                node.workers = workers
                node.host = host or node.host
                node.pid = pid if pid is not None else node.pid
                node.state = "alive"
                node.registered_at = _utc_now()
                self._expire_node_leases(node)  # stale generation: fence all
            node.last_seen = monotonic()
            return {
                "node_id": node.node_id,
                "generation": node.generation,
                "heartbeat_s": self.heartbeat_s,
                "lease_ttl_s": self.lease_ttl_s,
                "node_timeout_s": self.node_timeout_s,
                "version": self.version,
            }

    def _get_node(self, node_id: str) -> NodeRecord:
        """Caller holds the lock; raises the typed unknown/dead errors."""
        node = self._nodes.get(node_id)
        if node is None:
            raise UnknownNodeError(f"unknown node {node_id!r}")
        if node.state != "alive":
            raise NodeGoneError(
                f"node {node_id!r} was declared {node.state}; re-register"
            )
        return node

    def heartbeat(self, node_id: str) -> dict:
        """Record liveness; relay drain/quarantine instructions back."""
        with self._lock:
            node = self._get_node(node_id)
            node.last_seen = monotonic()
            return {
                "node_id": node.node_id,
                "drain": node.draining,
                "quarantined": node.quarantined,
                "heartbeat_s": self.heartbeat_s,
            }

    def drain(self, node_id: str) -> dict:
        """Mark a node draining: it finishes leased runs, claims nothing new."""
        with self._lock:
            node = self._nodes.get(node_id)
            if node is None:
                raise UnknownNodeError(f"unknown node {node_id!r}")
            node.draining = True
            return node.summary()

    def deregister_node(self, node_id: str) -> dict:
        """Graceful departure; any leases still held requeue immediately."""
        with self._lock:
            node = self._nodes.get(node_id)
            if node is None:
                raise UnknownNodeError(f"unknown node {node_id!r}")
            if node.state == "alive":
                node.state = "left"
            self._expire_node_leases(node)
            return node.summary()

    # --------------------------------------------------------------- leases
    def claim(self, node_id: str, max_runs: int = 1) -> list[dict]:
        """Lease up to ``max_runs`` claimable runs to ``node_id``.

        Draining and quarantined nodes get an empty list (they stay
        registered and may finish what they hold); dead nodes get
        :class:`NodeGoneError` and must re-register first.
        """
        with self._lock:
            node = self._get_node(node_id)
            node.last_seen = monotonic()
            if not node.eligible:
                return []
            budget = max(0, min(int(max_runs), node.workers - len(node.leases)))
            granted: list[dict] = []
            now = monotonic()
            while budget > 0 and self._claimable:
                run_token, spec_dict, label = self._claimable.popleft()
                lease = Lease(
                    lease_id=os.urandom(8).hex(),
                    token=os.urandom(16).hex(),
                    node_id=node_id,
                    run_token=run_token,
                    spec=spec_dict,
                    label=label,
                    granted_at=now,
                    deadline=now + self.lease_ttl_s,
                )
                self._leases[lease.lease_id] = lease
                self._by_token[run_token] = lease.lease_id
                node.leases.add(lease.lease_id)
                granted.append(
                    {
                        "lease_id": lease.lease_id,
                        "token": lease.token,
                        "spec": dict(spec_dict),
                        "label": label,
                        "ttl_s": self.lease_ttl_s,
                    }
                )
                budget -= 1
            return granted

    def _checked_lease(self, lease_id: str, node_id: str, token: str) -> Lease:
        """Caller holds the lock; fence anything that does not match exactly."""
        lease = self._leases.get(lease_id)
        if lease is None or lease.node_id != node_id or lease.token != token:
            raise FencedLeaseError(
                f"lease {lease_id!r} is not held by {node_id!r} (expired, "
                "revoked, or reassigned); drop the work — the coordinator "
                "owns the retry"
            )
        return lease

    def renew(self, lease_id: str, node_id: str, token: str) -> dict:
        """Push the lease deadline out one TTL; fenced if no longer held."""
        with self._lock:
            lease = self._checked_lease(lease_id, node_id, token)
            lease.deadline = monotonic() + self.lease_ttl_s
            lease.renewals += 1
            node = self._nodes.get(node_id)
            if node is not None:
                node.last_seen = monotonic()
            return {"lease_id": lease_id, "ttl_s": self.lease_ttl_s}

    def upload(self, lease_id: str, node_id: str, token: str, record_dict: dict) -> RunRecord:
        """Accept one finished record under a still-valid lease.

        The record is written through the coordinator's result cache (with
        read-back verification) *before* the completion is reported to the
        scheduler — the same durability order local workers follow.  A fenced
        upload raises without touching the cache or the accounting: the
        re-dispatched attempt owns the run now, and determinism guarantees it
        produces the byte-identical record into the same content-addressed
        slot.
        """
        record = RunRecord.from_dict(record_dict)
        with self._lock:
            lease = self._checked_lease(lease_id, node_id, token)
            self._release(lease)
            node = self._nodes.get(node_id)
            if node is not None:
                node.last_seen = monotonic()
                node.completed += 1
                if not record.ok:
                    node.failed += 1
                    self._maybe_quarantine(node)
        if self.cache is not None and record.ok:
            try:
                self.cache.put(record, verify=True)
            except OSError as exc:
                record = record.with_provenance(cache_error=str(exc))
        self._completions.put((lease.run_token, record))
        return record

    def _release(self, lease: Lease) -> None:
        """Caller holds the lock; forget one lease without losing its run."""
        self._leases.pop(lease.lease_id, None)
        if self._by_token.get(lease.run_token) == lease.lease_id:
            del self._by_token[lease.run_token]
        node = self._nodes.get(lease.node_id)
        if node is not None:
            node.leases.discard(lease.lease_id)

    def _expire_node_leases(self, node: NodeRecord) -> None:
        """Caller holds the lock; requeue every lease a node holds."""
        for lease_id in list(node.leases):
            lease = self._leases.get(lease_id)
            if lease is None:
                node.leases.discard(lease_id)
                continue
            self._release(lease)
            self._lost.append(lease.run_token)
            node.expired_leases += 1
        self._maybe_quarantine(node)

    def _maybe_quarantine(self, node: NodeRecord) -> None:
        """Caller holds the lock; quarantine a node past its poison budget."""
        if node.quarantined:
            return
        if node.failed + node.expired_leases >= self.quarantine_after:
            node.quarantined = True

    # --------------------------------------------------- RunBackend surface
    def capacity(self) -> int:
        """Unclaimed worker slots across eligible nodes (may be negative)."""
        with self._lock:
            slots = sum(
                node.workers - len(node.leases)
                for node in self._nodes.values()
                if node.eligible
            )
            return slots - len(self._claimable)

    def try_submit(self, token: Hashable, spec: RunSpec) -> bool:
        """Queue a run for claiming iff eligible nodes have spare slots."""
        with self._lock:
            if self.capacity() <= 0:
                return False
            self._claimable.append((token, spec.canonical(), spec.label()))
            return True

    def submit(self, token: Hashable, spec: RunSpec) -> None:
        """Unconditional queue (the StreamExecutor batch-adapter contract)."""
        with self._lock:
            self._claimable.append((token, spec.canonical(), spec.label()))

    def withdraw(self, token: Hashable) -> bool:
        """Recall a run no node has claimed yet (lost-task grace requeue)."""
        with self._lock:
            for entry in self._claimable:
                if entry[0] == token:
                    self._claimable.remove(entry)
                    return True
            return False

    def in_flight(self) -> dict:
        """``run_token -> (node id, lease granted monotonic)`` of leased runs."""
        with self._lock:
            return {
                lease.run_token: (lease.node_id, lease.granted_at)
                for lease in self._leases.values()
            }

    def kill_for(self, token: Hashable) -> bool:
        """Revoke the lease executing ``token`` (deadline enforcement).

        The node keeps crunching until it notices (its next renew or upload
        is fenced) — the remote analogue of SIGKILLing a local worker, with
        identical accounting: the caller owns the retry, and this execution
        can never report.
        """
        with self._lock:
            lease_id = self._by_token.get(token)
            if lease_id is None:
                return False
            lease = self._leases[lease_id]
            self._release(lease)
            return True

    def reap(self) -> list:
        """Expire overdue leases and declare silent nodes dead.

        Returns the run tokens reclaimed since the last call — the scheduler
        charges each one attempt and re-dispatches, exactly as for tasks lost
        to a dead local worker.
        """
        now = monotonic()
        with self._lock:
            for lease in list(self._leases.values()):
                if lease.deadline < now:
                    self._release(lease)
                    self._lost.append(lease.run_token)
                    node = self._nodes.get(lease.node_id)
                    if node is not None:
                        node.expired_leases += 1
                        self._maybe_quarantine(node)
            for node in self._nodes.values():
                if node.state == "alive" and now - node.last_seen > self.node_timeout_s:
                    node.state = "dead"
                    self._expire_node_leases(node)
            lost, self._lost = self._lost, []
            return lost

    def completions(self, timeout: float | None = None) -> Iterator[tuple[Hashable, RunRecord]]:
        """Yield uploads as they arrive (same contract as the worker pool)."""
        while True:
            try:
                token, record = self._completions.get(timeout=timeout)
            except queue_module.Empty:
                return
            yield token, record

    def nodes(self) -> list[dict]:
        with self._lock:
            now = monotonic()
            return [
                node.summary(now)
                for node in sorted(self._nodes.values(), key=lambda n: n.node_id)
            ]

    def health(self) -> dict:
        """Cluster liveness for ``/healthz`` and ``repro jobs``.

        ``degraded`` is true while any registered node is dead or
        quarantined — capacity the operator thinks exists but does not.
        Nodes that *left* gracefully do not degrade the cluster.
        """
        with self._lock:
            nodes = self.nodes()
            by_state: dict[str, int] = {}
            for node in nodes:
                by_state[node["state"]] = by_state.get(node["state"], 0) + 1
            return {
                "backend": self.backend_name,
                "nodes": nodes,
                "node_states": by_state,
                "claimable": len(self._claimable),
                "leases": len(self._leases),
                "degraded": any(
                    node["state"] in ("dead", "quarantined") for node in nodes
                ),
                "lease_ttl_s": self.lease_ttl_s,
                "heartbeat_s": self.heartbeat_s,
                "node_timeout_s": self.node_timeout_s,
                "quarantine_after": self.quarantine_after,
            }

    def close(self) -> None:  # nothing persistent to release
        pass


class NodeAgent:
    """The remote half of the federation: ``repro node`` in library form.

    Single-threaded control loop around a local :class:`WorkerPool`:
    register, then each tick — heartbeat, renew held leases, claim new ones up
    to the local worker count, drain pool completions into the upload queue,
    and flush uploads.  Transient coordinator failures (connection errors,
    injected partition faults) never crash the agent: heartbeats are simply
    lost (the coordinator's timeout decides what that means), uploads stay
    queued and retry, and a ``410 Gone`` answer triggers re-registration.

    The agent's own durability story mirrors the coordinator's: a local
    worker that dies mid-run is reaped and its lease reported back as a
    *failed* record (the scheduler charges the attempt and re-dispatches);
    an agent killed outright simply stops renewing, and its leases expire.
    """

    def __init__(
        self,
        coordinator: str,
        workers: int = 2,
        node_id: str = "",
        cache_dir: str | None = None,
        poll_s: float = 0.1,
        client=None,
    ):
        from repro.serve.client import ServeClient  # avoid an import cycle

        self.coordinator = coordinator.rstrip("/")
        self.workers = check_positive_int(workers, "workers")
        self.node_id = node_id or f"{socket.gethostname()}-{os.getpid()}"
        self.poll_s = poll_s
        # retries=0: the agent owns its retry cadence, and partition faults
        # must surface immediately instead of being absorbed by the client.
        self.client = client if client is not None else ServeClient(
            self.coordinator, timeout=10.0, retries=0
        )
        from repro.serve.workers import WorkerPool

        self.pool = WorkerPool(workers=self.workers, cache_dir=cache_dir)
        self.draining = False
        self.heartbeat_s = 2.0
        self.lease_ttl_s = 15.0
        self.generation = 0
        #: lease_id -> {"token", "spec", "label", "deadline"(monotonic)}
        self._held: dict[str, dict] = {}
        #: (lease_id, token, label, record) awaiting a successful upload
        self._uploads: deque = deque()
        self._stop = threading.Event()
        self.stats = {
            "executed": 0,
            "uploaded": 0,
            "fenced": 0,
            "lost_heartbeats": 0,
            "reregistrations": 0,
        }

    # ------------------------------------------------------------- control
    def request_drain(self) -> None:
        """Finish held leases, upload them, deregister, exit the run loop."""
        self.draining = True

    def stop(self) -> None:
        """Hard stop: exit the loop at the next tick without draining."""
        self._stop.set()

    # ------------------------------------------------------------ lifecycle
    def run(self) -> int:
        """Drive the agent until drained or stopped; returns held-lease count
        abandoned (0 on a clean drain)."""
        if not self._register(block=True):
            return 0  # stopped before the coordinator ever answered
        self.pool.start()
        next_heartbeat = 0.0
        try:
            while not self._stop.is_set():
                now = monotonic()
                if now >= next_heartbeat:
                    self._heartbeat()
                    next_heartbeat = now + self.heartbeat_s
                self._renew_leases(now)
                if not self.draining:
                    self._claim()
                self._drain_pool()
                self._flush_uploads()
                if self.draining and not self._held and not self._uploads:
                    break
            if not self._stop.is_set():
                # Clean drain: say goodbye.  A hard stop() deliberately does
                # not deregister — it models a crash, and the coordinator's
                # lease/heartbeat timeouts own the cleanup.
                self._deregister()
            return len(self._held)
        finally:
            self.pool.stop(graceful=True)

    def _register(self, block: bool = False) -> bool:
        from repro.serve.client import ServeError

        while not self._stop.is_set():
            try:
                config = self.client.register_node(
                    self.node_id,
                    workers=self.workers,
                    host=socket.gethostname(),
                    pid=os.getpid(),
                )
            except ServeError:
                if not block:
                    return False
                self._stop.wait(self.poll_s * 5)
                continue
            self.heartbeat_s = float(config.get("heartbeat_s", self.heartbeat_s))
            self.lease_ttl_s = float(config.get("lease_ttl_s", self.lease_ttl_s))
            if self.generation:
                self.stats["reregistrations"] += 1
            self.generation = int(config.get("generation", self.generation + 1))
            # Leases from a previous generation are fenced server-side; any
            # still tracked locally are dead weight — drop them.
            if self.stats["reregistrations"]:
                self._held.clear()
            return True
        return False

    def _deregister(self) -> None:
        from repro.serve.client import ServeError

        try:
            self.client.deregister_node(self.node_id)
        except (ServeError, InjectedFault):
            pass  # best-effort; the coordinator's timeout cleans up

    # ------------------------------------------------------------ the loop
    def _heartbeat(self) -> None:
        from repro.serve.client import ServeError

        try:
            fault_point("node.heartbeat", key=self.node_id)
            answer = self.client.node_heartbeat(self.node_id)
        except InjectedFault:
            self.stats["lost_heartbeats"] += 1  # partition: send was lost
            return
        except ServeError as exc:
            if exc.status in (404, 410):  # declared dead while partitioned
                self._register(block=False)
            else:
                self.stats["lost_heartbeats"] += 1
            return
        if answer.get("drain"):
            self.draining = True

    def _claim(self) -> None:
        from repro.serve.client import ServeError

        free = self.workers - len(self._held)
        if free <= 0:
            return
        try:
            leases = self.client.claim_leases(self.node_id, max_runs=free)
        except ServeError as exc:
            if exc.status in (404, 410):
                self._register(block=False)
            return
        except InjectedFault:
            return
        now = monotonic()
        for lease in leases:
            spec = _spec_from_canonical(lease["spec"])
            self._held[lease["lease_id"]] = {
                "token": lease["token"],
                "spec": spec.canonical(),
                "label": lease.get("label", spec.label()),
                "deadline": now + float(lease.get("ttl_s", self.lease_ttl_s)),
            }
            self.pool.submit(lease["lease_id"], spec)

    def _renew_leases(self, now: float) -> None:
        from repro.serve.client import ServeError

        for lease_id, held in list(self._held.items()):
            if held["deadline"] - now > self.lease_ttl_s / 2.0:
                continue
            try:
                fault_point("node.lease_renew", key=held["label"])
                self.client.renew_lease(lease_id, self.node_id, held["token"])
            except InjectedFault:
                continue  # renewal lost in the network; retried next tick
            except ServeError as exc:
                if exc.status == 409:
                    # Fenced: the coordinator reclaimed this run.  Stop
                    # wasting a local worker on it — the upload would be
                    # fenced anyway — and let reap() respawn the slot.
                    self._held.pop(lease_id, None)
                    self.pool.kill_for(lease_id)
                    self.stats["fenced"] += 1
                continue
            held["deadline"] = now + self.lease_ttl_s

    def _drain_pool(self) -> None:
        for lease_id, record in self.pool.completions(timeout=self.poll_s):
            held = self._held.pop(lease_id, None)
            if held is None:
                continue  # fenced while executing; drop the orphan record
            self.stats["executed"] += 1
            self._uploads.append((lease_id, held["token"], held["label"], record))
        for lease_id in self.pool.reap():
            held = self._held.pop(lease_id, None)
            if held is None:
                continue
            spec = _spec_from_canonical(held["spec"])
            record = failure_record(
                spec, "node worker died mid-run", executor_kind="node-worker"
            )
            self._uploads.append((lease_id, held["token"], held["label"], record))

    def _flush_uploads(self) -> None:
        from repro.serve.client import ServeError

        for _ in range(len(self._uploads)):
            lease_id, token, label, record = self._uploads.popleft()
            try:
                effect = fault_point("node.upload", key=label)
            except InjectedFault:
                self._uploads.append((lease_id, token, label, record))
                continue  # upload lost in the network; retried next tick
            if effect == "corrupt_write":
                # A torn upload: the request body is cut mid-transfer.  The
                # coordinator rejects the unparseable document (400) and the
                # agent retries the full upload on a later tick.
                self._post_torn(
                    f"/leases/{lease_id}/result",
                    {"node_id": self.node_id, "token": token,
                     "record": record.to_dict()},
                )
                self._uploads.append((lease_id, token, label, record))
                continue
            try:
                self.client.upload_result(
                    lease_id, self.node_id, token, record.to_dict()
                )
            except ServeError as exc:
                if exc.status == 409:
                    self.stats["fenced"] += 1  # reclaimed; coordinator retries
                elif exc.status == 400:
                    pass  # permanently malformed: dropping beats looping
                else:
                    self._uploads.append((lease_id, token, label, record))
                continue
            self.stats["uploaded"] += 1

    def _post_torn(self, path: str, payload: dict) -> None:
        """Send a deliberately truncated request body (chaos: torn upload)."""
        body = json.dumps(payload).encode()
        request = urllib.request.Request(
            f"{self.coordinator}{path}",
            data=body[: max(1, len(body) // 3)],
            method="POST",
            headers={"Content-Type": "application/json"},
        )
        try:
            with urllib.request.urlopen(request, timeout=10.0):
                pass
        except (urllib.error.URLError, OSError):
            pass  # 400 (or a dead coordinator) — either way, retry later
