"""Tests for the analysis harnesses: metrics, susceptibility, mitigation studies, reporting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    EXPERIMENTS,
    MitigationAnalysisConfig,
    MitigationStudy,
    SusceptibilityConfig,
    SusceptibilityStudy,
    accuracy_drop,
    accuracy_recovery,
    box_stats,
    format_fig7_table,
    format_fig8_table,
    format_fig9_table,
    format_table,
    format_table1,
    get_experiment,
    percent,
)
from repro.analysis.reporting import format_deployment_report
from repro.mitigation import L2Config, NoiseAwareConfig, VariantSpec
from repro.nn.models import table1_rows


class TestMetrics:
    def test_accuracy_drop_and_recovery(self):
        assert accuracy_drop(0.99, 0.915) == pytest.approx(0.075)
        assert accuracy_recovery(0.4, 0.75) == pytest.approx(0.35)

    def test_box_stats_five_numbers(self):
        stats = box_stats(np.array([0.1, 0.2, 0.3, 0.4, 0.5]))
        assert stats.minimum == 0.1 and stats.maximum == 0.5
        assert stats.median == 0.3
        assert stats.q1 == 0.2 and stats.q3 == 0.4
        assert stats.mean == pytest.approx(0.3)
        assert set(stats.as_dict()) == {"min", "q1", "median", "q3", "max", "mean"}

    def test_box_stats_empty_raises(self):
        with pytest.raises(ValueError):
            box_stats(np.array([]))

    def test_percent_formatting(self):
        assert percent(0.1234) == "12.34%"
        assert percent(0.5, digits=0) == "50%"


class TestReportingFormatters:
    def test_generic_table_alignment(self):
        text = format_table(["a", "bb"], [[1, 2.5], ["x", "y"]], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "bb" in lines[1]
        assert len(lines) == 5

    def test_table1_formatter_includes_all_models(self):
        text = format_table1(table1_rows(include_measured=True))
        for name in ("CNN_1", "ResNet18", "VGG16_v"):
            assert name in text

    def test_deployment_report_formatter(self):
        text = format_deployment_report({"model": "cnn_mnist", "conv_rounds": 2})
        assert "conv_rounds" in text


@pytest.fixture(scope="module")
def quick_susceptibility_result():
    config = SusceptibilityConfig.quick(
        model_names=("cnn_mnist",),
        num_placements=2,
        fractions=(0.01, 0.10),
        blocks=("both",),
    )
    return SusceptibilityStudy(config).run()


class TestSusceptibilityStudy:
    def test_baselines_and_scenarios_recorded(self, quick_susceptibility_result):
        result = quick_susceptibility_result
        assert result.baselines["cnn_mnist"] > 0.7
        # 2 kinds x 1 block x 2 fractions x 2 placements
        assert len(result.scenarios) == 8
        assert all(0.0 <= s.accuracy <= 1.0 for s in result.scenarios)

    def test_larger_attacks_cause_larger_drops(self, quick_susceptibility_result):
        result = quick_susceptibility_result
        small = result.accuracies_for("cnn_mnist", fraction=0.01).mean()
        large = result.accuracies_for("cnn_mnist", fraction=0.10).mean()
        assert large <= small + 0.02

    def test_hotspot_at_least_as_damaging_as_actuation(self, quick_susceptibility_result):
        result = quick_susceptibility_result
        actuation = result.accuracies_for("cnn_mnist", kind="actuation", fraction=0.10).mean()
        hotspot = result.accuracies_for("cnn_mnist", kind="hotspot", fraction=0.10).mean()
        assert hotspot <= actuation + 0.05

    def test_worst_case_drop_and_series(self, quick_susceptibility_result):
        result = quick_susceptibility_result
        assert result.worst_case_drop("cnn_mnist") >= 0.0
        series = result.series_for_figure("cnn_mnist")
        assert any(label.startswith("hotspot-both") for label in series)
        assert all(len(values) == 2 for values in series.values())

    def test_fig7_formatter(self, quick_susceptibility_result):
        text = format_fig7_table(quick_susceptibility_result, "cnn_mnist")
        assert "hotspot" in text and "actuation" in text and "baseline" in text


@pytest.fixture(scope="module")
def quick_mitigation_result():
    config = MitigationAnalysisConfig.quick(
        model_names=("cnn_mnist",),
        variants=(
            VariantSpec(name="Original"),
            VariantSpec(name="l2+n3", l2=L2Config(), noise=NoiseAwareConfig(std=0.3)),
        ),
        fractions=(0.10,),
        num_placements=2,
    )
    return MitigationStudy(config).run()


class TestMitigationStudy:
    def test_distributions_cover_all_variants(self, quick_mitigation_result):
        result = quick_mitigation_result
        variants = {d.variant for d in result.distributions_for("cnn_mnist")}
        assert variants == {"Original", "l2+n3"}
        for dist in result.distributions:
            assert dist.accuracies.shape == (4,)  # 2 kinds x 1 fraction x 2 placements

    def test_best_variant_is_not_original(self, quick_mitigation_result):
        assert quick_mitigation_result.best_variant["cnn_mnist"] != "Original"

    def test_comparison_rows_have_both_kinds(self, quick_mitigation_result):
        rows = quick_mitigation_result.comparison_for("cnn_mnist")
        assert {row.kind for row in rows} == {"actuation", "hotspot"}
        for row in rows:
            assert 0.0 <= row.original_accuracy_min <= row.original_accuracy_mean <= 1.0
            assert 0.0 <= row.robust_accuracy_min <= row.robust_accuracy_mean <= 1.0

    def test_fig8_and_fig9_formatters(self, quick_mitigation_result):
        fig8 = format_fig8_table(quick_mitigation_result.distributions, "cnn_mnist")
        assert "l2+n3" in fig8
        fig9 = format_fig9_table(quick_mitigation_result.comparison, "cnn_mnist")
        assert "recovery" in fig9.lower()


class TestExperimentRegistry:
    def test_registry_covers_all_paper_artefacts(self):
        assert {"table1", "fig6", "fig7", "fig8", "fig9"}.issubset(EXPERIMENTS)

    def test_get_experiment_unknown_id(self):
        with pytest.raises(KeyError):
            get_experiment("fig42")

    def test_table1_runner(self):
        result = get_experiment("table1").run()
        assert len(result["rows"]) == 3

    def test_fig6_runner(self):
        result = get_experiment("fig6").run()
        assert result["peak_rise_k"] > 5.0
        assert result["num_affected_banks"] >= len(result["attacked_banks"])

    def test_ablation_tuning_runner(self):
        result = get_experiment("ablation_tuning").run()
        assert result["shift_0.2nm"]["eo_energy_j"] < result["shift_0.2nm"]["to_energy_j"]
        assert result["total_power_w"] > 0
