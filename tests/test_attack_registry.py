"""Tests for the pluggable attack-kind API.

Covers the registry itself (registration, lookup, a toy plugin kind run
end-to-end through the scenario grid and the batched inference engine), the
three non-paper built-in kinds (crosstalk, laser_power, triggered) including
their serial-vs-batch bit-identity, and a golden regression pinning the
built-in actuation/hotspot grid to its pre-registry numbers on both
evaluation paths.
"""

from __future__ import annotations

import hashlib
import json
import os
import subprocess
import sys

import numpy as np
import pytest

from repro.accelerator import AcceleratorConfig, AttackedInferenceEngine, WeightMapping
from repro.attacks import (
    AttackKind,
    AttackOutcome,
    AttackScenario,
    AttackSpec,
    BlockEffect,
    CrosstalkAttack,
    CrosstalkAttackConfig,
    HotspotAttack,
    HotspotAttackConfig,
    LaserPowerAttack,
    LaserPowerAttackConfig,
    TriggeredAttack,
    TriggeredAttackConfig,
    corrupted_state_batch,
    corrupted_state_dict,
    create_attack,
    generate_scenarios,
    get_attack_kind,
    is_registered,
    load_plugin_modules,
    register_attack,
    registered_kinds,
    sample_outcome,
    unregister_attack,
)
from repro.nn.models import build_model
from repro.utils.rng import default_rng
from repro.utils.validation import ValidationError

BUILTIN_KINDS = ("actuation", "hotspot", "crosstalk", "laser_power", "triggered")


def _assert_batch_matches_serial(model, mapping, outcomes):
    """Row-by-row bit-identity of the batched kernel vs the reference path."""
    stacked = corrupted_state_batch(model, mapping, outcomes)
    for index, outcome in enumerate(outcomes):
        serial = corrupted_state_dict(model, mapping, outcome)
        for mapped in mapping.parameters:
            np.testing.assert_array_equal(
                stacked[mapped.name][index], serial[mapped.name],
                err_msg=f"{outcome.spec.label()} / {mapped.name}",
            )


class TestRegistry:
    def test_builtin_kinds_registered(self):
        assert set(BUILTIN_KINDS).issubset(registered_kinds())
        for kind in BUILTIN_KINDS:
            assert is_registered(kind)
            assert issubclass(get_attack_kind(kind), AttackKind)

    def test_unknown_kind_lookup_and_spec(self):
        with pytest.raises(ValidationError, match="unknown attack kind"):
            get_attack_kind("melt")
        with pytest.raises(ValidationError, match="registered attack kind"):
            AttackSpec("melt", "conv", 0.1)

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValidationError, match="already registered"):

            @register_attack("actuation")
            class Impostor(AttackKind):
                def sample(self, config, seed=0):
                    raise NotImplementedError

    def test_params_coercion_and_validation(self):
        attack = create_attack(
            AttackSpec("laser_power", "fc", 0.1), {"residual_power": 0.5}
        )
        assert attack.params == LaserPowerAttackConfig(residual_power=0.5)
        with pytest.raises(ValidationError, match="unknown parameter"):
            create_attack(AttackSpec("laser_power", "fc", 0.1), {"wattage": 3})
        with pytest.raises(ValidationError, match="takes no parameters"):
            create_attack(AttackSpec("actuation", "fc", 0.1), {"anything": 1})
        with pytest.raises(ValidationError, match="requires kind"):
            HotspotAttack(AttackSpec("actuation", "conv", 0.1))

    def test_toy_kind_round_trip(self, trained_mnist_model, mnist_split,
                                 scaled_accelerator_config):
        """A kind registered in-test flows through grid, kernels and engine."""

        @register_attack("toy_floor")
        class ToyFloorAttack(AttackKind):
            """Floors a random contiguous run of slots in each block."""

            summary = "test-only contiguous slot floor"

            def sample(self, config, seed=0):
                rng = default_rng(seed)
                outcome = AttackOutcome(spec=self.spec, seed=0)
                for block in self.spec.blocks:
                    capacity = config.block(block).capacity
                    count = max(1, int(round(self.spec.fraction * capacity)))
                    start = int(rng.integers(0, capacity - count + 1))
                    outcome.add_effect(
                        block,
                        BlockEffect(
                            slots_off=np.arange(start, start + count, dtype=np.int64)
                        ),
                        attacked_mrs=count,
                    )
                return outcome

        try:
            scenarios = generate_scenarios(
                kinds=("toy_floor", "actuation"), blocks=("both",),
                fractions=(0.05,), num_placements=2, master_seed=3,
            )
            outcomes = [
                sample_outcome(s, scaled_accelerator_config) for s in scenarios
            ]
            assert any(o.spec.kind == "toy_floor" for o in outcomes)
            engine = AttackedInferenceEngine(
                trained_mnist_model, scaled_accelerator_config
            )
            batched = engine.accuracy_under_attacks(mnist_split.test, outcomes)
            serial = np.array([
                engine.accuracy_under_attack(mnist_split.test, o) for o in outcomes
            ])
            np.testing.assert_array_equal(batched, serial)
        finally:
            unregister_attack("toy_floor")
        assert not is_registered("toy_floor")


class TestNewKindOutcomes:
    @pytest.fixture
    def model_and_mapping(self, tiny_accelerator_config):
        model = build_model("cnn_mnist", profile="scaled", rng=0)
        mapping = WeightMapping(model, tiny_accelerator_config)
        return model, mapping

    def test_crosstalk_has_no_heater_control(self, tiny_accelerator_config):
        outcome = CrosstalkAttack(AttackSpec("crosstalk", "conv", 0.2)).sample(
            tiny_accelerator_config, seed=0
        )
        effect = outcome.effects["conv"]
        assert effect.attacked_banks == ()
        assert effect.bank_delta_t  # the leakage heat field is recorded
        cols = tiny_accelerator_config.conv_block.cols
        num_banks = tiny_accelerator_config.conv_block.num_banks
        assert outcome.num_attacked_mrs("conv") == round(0.2 * num_banks) * cols

    def test_crosstalk_weaker_than_hotspot_per_bank(self, scaled_accelerator_config):
        """No min-rise clamp: a crosstalk source bank can stay below the
        hotspot guarantee that directly attacked banks always re-pair."""
        hotspot = HotspotAttack(AttackSpec("hotspot", "conv", 0.05)).sample(
            scaled_accelerator_config, seed=0
        )
        floor = HotspotAttackConfig().attacked_bank_min_rise_k
        attacked = hotspot.effects["conv"].attacked_banks
        assert all(
            hotspot.effects["conv"].bank_delta_t[b] >= floor for b in attacked
        )
        crosstalk = CrosstalkAttack(
            AttackSpec("crosstalk", "conv", 0.05),
            CrosstalkAttackConfig(leakage_power_mw=100.0),
        ).sample(scaled_accelerator_config, seed=0)
        assert max(crosstalk.effects["conv"].bank_delta_t.values()) < floor

    def test_laser_power_stripes_columns(self, model_and_mapping,
                                         tiny_accelerator_config):
        model, mapping = model_and_mapping
        geometry = tiny_accelerator_config.conv_block
        params = LaserPowerAttackConfig(residual_power=0.25)
        outcome = LaserPowerAttack(
            AttackSpec("laser_power", "conv", 0.4), params
        ).sample(tiny_accelerator_config, seed=0)
        scale = outcome.effects["conv"].col_scale
        attacked_cols = np.flatnonzero(scale != 1.0)
        assert len(attacked_cols) == round(0.4 * geometry.cols)
        assert np.all(scale[attacked_cols] == params.residual_power)
        assert outcome.num_attacked_mrs("conv") == (
            len(attacked_cols) * geometry.num_banks
        )

        corrupted = corrupted_state_dict(model, mapping, outcome)
        for mapped in mapping.parameters_in_block("conv"):
            original = model.state_dict()[mapped.name].reshape(-1)
            changed = corrupted[mapped.name].reshape(-1)
            cols = mapping.slots_for(mapped) % geometry.cols
            hit = np.isin(cols, attacked_cols)
            # Attacked columns scale toward zero, spared columns round-trip.
            nonzero = hit & (np.abs(original) > 1e-4)
            np.testing.assert_allclose(
                np.abs(changed[nonzero]),
                np.abs(original[nonzero]) * params.residual_power,
                rtol=1e-5,
            )
            np.testing.assert_allclose(changed[~hit], original[~hit], atol=1e-6)

    def test_triggered_dormant_is_empty(self, tiny_accelerator_config):
        dormant = TriggeredAttack(
            AttackSpec("triggered", "both", 0.1),
            TriggeredAttackConfig(
                trigger="inference_count", trigger_count=100, observed_inferences=99
            ),
        ).sample(tiny_accelerator_config, seed=0)
        assert dormant.is_empty()
        assert dormant.num_attacked_mrs("conv") == 0
        assert dormant.touched_blocks() == ()

    def test_triggered_fires_base_kind_placement(self, tiny_accelerator_config):
        fired = TriggeredAttack(
            AttackSpec("triggered", "both", 0.1),
            TriggeredAttackConfig(base="actuation", trigger="always_on"),
        ).sample(tiny_accelerator_config, seed=7)
        base = create_attack(AttackSpec("actuation", "both", 0.1)).sample(
            tiny_accelerator_config, seed=7
        )
        for block in ("conv", "fc"):
            np.testing.assert_array_equal(
                fired.effects[block].slots_off, base.effects[block].slots_off
            )
            assert fired.num_attacked_mrs(block) == base.num_attacked_mrs(block)
        assert fired.spec.kind == "triggered"

    def test_triggered_inherits_grid_base_params(self, tiny_accelerator_config):
        """Without explicit base_params, a fired trigger adopts the grid's
        parameters for its base kind, so triggered and bare scenarios of the
        same base stay physically identical."""
        hotspot = HotspotAttackConfig(attacked_bank_min_rise_k=23.0)
        kind_params = {"triggered": {"base": "hotspot", "trigger": "always_on"}}
        scenario = AttackScenario(
            spec=AttackSpec("triggered", "fc", 0.1), placement=0, seed=11
        )
        fired = sample_outcome(
            scenario, tiny_accelerator_config,
            hotspot_config=hotspot, kind_params=kind_params,
        )
        bare = sample_outcome(
            AttackScenario(
                spec=AttackSpec("hotspot", "fc", 0.1), placement=0, seed=11
            ),
            tiny_accelerator_config, hotspot_config=hotspot,
        )
        assert fired.effects["fc"].bank_delta_t == bare.effects["fc"].bank_delta_t
        assert fired.effects["fc"].attacked_banks == bare.effects["fc"].attacked_banks
        # The grid's config (not the hotspot default of 16 K) reached the base.
        attacked = fired.effects["fc"].attacked_banks
        assert attacked and all(
            fired.effects["fc"].bank_delta_t[b] >= 23.0 for b in attacked
        )
        # Explicit base_params still win over the grid's entry.
        explicit = {
            "triggered": {**kind_params["triggered"],
                          "base_params": {"attacked_bank_min_rise_k": 31.0}},
        }
        other = sample_outcome(
            scenario, tiny_accelerator_config,
            hotspot_config=hotspot, kind_params=explicit,
        )
        assert other.effects["fc"].bank_delta_t != bare.effects["fc"].bank_delta_t

    def test_triggered_external_arming(self, tiny_accelerator_config):
        params = TriggeredAttackConfig(trigger="external", armed=False)
        attack = TriggeredAttack(AttackSpec("triggered", "conv", 0.1), params)
        assert attack.sample(tiny_accelerator_config, seed=0).is_empty()
        armed = TriggeredAttackConfig(trigger="external", armed=True)
        attack = TriggeredAttack(AttackSpec("triggered", "conv", 0.1), armed)
        assert not attack.sample(tiny_accelerator_config, seed=0).is_empty()

    def test_triggered_rejects_bad_base(self):
        with pytest.raises(ValidationError, match="cannot wrap themselves"):
            TriggeredAttackConfig(base="triggered")
        with pytest.raises(ValidationError, match="registered attack kind"):
            TriggeredAttackConfig(base="melt")
        with pytest.raises(ValidationError, match="trigger must be one of"):
            TriggeredAttackConfig(trigger="moon_phase")

    def test_all_kinds_batch_matches_serial(self, model_and_mapping,
                                            tiny_accelerator_config):
        """The acceptance bar: every registered kind rides the batched kernel
        bit-identically, including mixed batches across kinds."""
        model, mapping = model_and_mapping
        outcomes = []
        for kind in registered_kinds():
            for seed in (0, 1):
                outcomes.append(
                    create_attack(AttackSpec(kind, "both", 0.1)).sample(
                        tiny_accelerator_config, seed=seed
                    )
                )
        _assert_batch_matches_serial(model, mapping, outcomes)

    def test_effect_merging_composes(self):
        a = BlockEffect(slots_off=np.array([1, 2]), bank_delta_t={0: 5.0},
                        attacked_banks=(0,))
        b = BlockEffect(slots_off=np.array([2, 3]), bank_delta_t={0: 3.0, 1: 2.0},
                        col_scale=np.array([1.0, 0.5]))
        merged = a.merged_with(b)
        np.testing.assert_array_equal(merged.slots_off, [1, 2, 3])
        assert merged.bank_delta_t == {0: 8.0, 1: 2.0}
        assert merged.attacked_banks == (0,)
        np.testing.assert_array_equal(merged.col_scale, [1.0, 0.5])
        assert BlockEffect().is_empty()
        assert not merged.is_empty()
        assert BlockEffect(col_scale=np.array([1.0, 1.0])).is_empty()


class TestEngineEquivalenceNewKinds:
    @pytest.fixture(scope="class")
    def engine_and_data(self, trained_mnist_model, mnist_split,
                        scaled_accelerator_config):
        engine = AttackedInferenceEngine(trained_mnist_model, scaled_accelerator_config)
        return engine, mnist_split.test

    @pytest.mark.parametrize("kind,params", [
        ("crosstalk", None),
        ("laser_power", None),
        ("triggered", TriggeredAttackConfig(base="hotspot", trigger="always_on")),
    ])
    def test_batched_accuracies_match_reference(self, engine_and_data, kind, params,
                                                scaled_accelerator_config):
        engine, dataset = engine_and_data
        outcomes = [
            create_attack(AttackSpec(kind, block, 0.1), params).sample(
                scaled_accelerator_config, seed=seed
            )
            for block in ("conv", "fc", "both")
            for seed in (0, 1)
        ]
        serial = np.array(
            [engine.accuracy_under_attack(dataset, o) for o in outcomes]
        )
        batched = engine.accuracy_under_attacks(dataset, outcomes)
        np.testing.assert_array_equal(batched, serial)
        # The grid must not be a no-op: at 10% intensity some scenario of
        # every new kind has to move the needle.
        clean = engine.accuracy_under_attack(
            dataset, AttackOutcome(spec=AttackSpec(kind, "both", 0.1))
        )
        assert np.min(serial) < clean


class TestGoldenRegression:
    """Bit-identity of the built-in actuation/hotspot grids across refactors.

    The golden numbers were captured from the pre-registry implementation
    (PR 3) with exactly the conftest workload fixtures; both evaluation
    paths must keep reproducing them.
    """

    GOLDEN_BASELINE = 0.95
    GOLDEN_ACCURACIES = [
        0.96, 0.95, 0.96, 0.89, 0.96, 0.91, 0.69, 0.55,
        0.92, 0.95, 0.78, 0.59, 0.94, 0.95, 0.97, 0.90,
        0.97, 0.96, 0.81, 0.59, 0.96, 0.96, 0.88, 0.27,
    ]
    GOLDEN_CORRUPTED_FRACTIONS = [
        0.0002701906071919827, 0.00041756730202397325, 0.0028492827667518177,
        0.0030212222440558064, 0.009628610729023384, 0.009604047946551385,
        0.09699842798192179, 0.09704755354686578, 0.010119866378463353,
        0.010046178031047357, 0.10060915700530557, 0.10053546865788957,
        0.0002456278247199843, 0.0004912556494399686, 0.003930045195519749,
        0.005133621536647671, 0.015449990174887011, 0.01763607781489487,
        0.2917076046374533, 0.29932206720377286, 0.011298879937119278,
        0.015449990174887011, 0.3156317547651798, 0.30082039693456475,
    ]
    # sha256 over the corrupted state dicts of six mixed actuation/hotspot
    # outcomes on the tiny config (untrained cnn_mnist, rng=0) — the most
    # sensitive fingerprint of the injection kernels.
    GOLDEN_SERIAL_SHA = "9d1eb3ba167c2bc60df0c97176eab5b8444215a39c3fc7c74117cb009021f55c"
    GOLDEN_BATCH_SHA = "e4168306fce707fac17249867d5b442d0d516742c6858bca3f6237c3088ede97"

    def _golden_grid(self, config):
        scenarios = generate_scenarios(
            kinds=("actuation", "hotspot"), blocks=("conv", "fc", "both"),
            fractions=(0.01, 0.10), num_placements=2, master_seed=0,
        )
        return scenarios, [
            sample_outcome(s, config, HotspotAttackConfig()) for s in scenarios
        ]

    def test_fig7_grid_accuracies_unchanged(self, trained_mnist_model, mnist_split,
                                            scaled_accelerator_config):
        engine = AttackedInferenceEngine(trained_mnist_model, scaled_accelerator_config)
        _, outcomes = self._golden_grid(scaled_accelerator_config)
        assert engine.clean_accuracy(mnist_split.test) == self.GOLDEN_BASELINE
        serial = [
            float(engine.accuracy_under_attack(mnist_split.test, o)) for o in outcomes
        ]
        assert serial == self.GOLDEN_ACCURACIES
        batched = engine.accuracy_under_attacks(mnist_split.test, outcomes)
        assert list(batched) == self.GOLDEN_ACCURACIES
        fractions = engine.weight_corruption_fractions(outcomes)
        np.testing.assert_allclose(
            fractions, self.GOLDEN_CORRUPTED_FRACTIONS, rtol=0, atol=0
        )

    def test_corrupted_weights_checksum_unchanged(self, tiny_accelerator_config):
        from repro.attacks import ActuationAttack

        model = build_model("cnn_mnist", profile="scaled", rng=0)
        mapping = WeightMapping(model, tiny_accelerator_config)
        outcomes = []
        for seed in (0, 1, 2):
            outcomes.append(
                ActuationAttack(AttackSpec("actuation", "both", 0.1)).sample(
                    tiny_accelerator_config, seed=seed
                )
            )
            outcomes.append(
                HotspotAttack(AttackSpec("hotspot", "both", 0.1)).sample(
                    tiny_accelerator_config, seed=seed
                )
            )
        digest = hashlib.sha256()
        for outcome in outcomes:
            state = corrupted_state_dict(model, mapping, outcome)
            for name in sorted(state):
                digest.update(np.ascontiguousarray(state[name]).tobytes())
        assert digest.hexdigest() == self.GOLDEN_SERIAL_SHA
        stacked = corrupted_state_batch(model, mapping, outcomes)
        digest = hashlib.sha256()
        for name in sorted(stacked):
            digest.update(np.ascontiguousarray(stacked[name]).tobytes())
        assert digest.hexdigest() == self.GOLDEN_BATCH_SHA


PLUGIN_SOURCE = '''
import numpy as np
from repro.attacks import AttackKind, AttackOutcome, BlockEffect, register_attack


@register_attack("plugin_probe")
class PluginProbeAttack(AttackKind):
    summary = "test-only out-of-tree kind"

    def sample(self, config, seed=0):
        outcome = AttackOutcome(spec=self.spec, seed=0)
        for block in self.spec.blocks:
            outcome.add_effect(
                block, BlockEffect(slots_off=np.array([0])), attacked_mrs=1
            )
        return outcome
'''


class TestPluginLoading:
    """Out-of-tree kinds reach the registry via $REPRO_ATTACK_PLUGINS."""

    def test_env_plugin_modules_imported(self, tmp_path, monkeypatch):
        (tmp_path / "ht_plugin_kind.py").write_text(PLUGIN_SOURCE)
        monkeypatch.syspath_prepend(str(tmp_path))
        monkeypatch.setenv("REPRO_ATTACK_PLUGINS", "ht_plugin_kind")
        try:
            assert load_plugin_modules() == ("ht_plugin_kind",)
            assert is_registered("plugin_probe")
        finally:
            unregister_attack("plugin_probe")
            sys.modules.pop("ht_plugin_kind", None)

    def test_env_plugin_import_error_is_actionable(self, monkeypatch):
        monkeypatch.setenv("REPRO_ATTACK_PLUGINS", "definitely_missing_plugin")
        with pytest.raises(ImportError, match="REPRO_ATTACK_PLUGINS"):
            load_plugin_modules()

    def test_plugin_reaches_fresh_interpreter(self, tmp_path):
        """End-to-end: a fresh process (the CLI, or a process-pool sweep
        worker) imports the plugin from the inherited environment."""
        (tmp_path / "ht_plugin_kind.py").write_text(PLUGIN_SOURCE)
        env = dict(os.environ)
        env["REPRO_ATTACK_PLUGINS"] = "ht_plugin_kind"
        env["PYTHONPATH"] = os.pathsep.join(
            [str(tmp_path)] + env.get("PYTHONPATH", "").split(os.pathsep)
        )
        result = subprocess.run(
            [sys.executable, "-m", "repro", "attacks", "--json"],
            capture_output=True, text=True, env=env, check=True,
        )
        kinds = [row["kind"] for row in json.loads(result.stdout)["kinds"]]
        assert "plugin_probe" in kinds
