"""Tests for the persistent campaign service (job store, workers, API, CLI).

The crash-resume test drives a real ``repro serve`` subprocess and SIGKILLs
its whole process group mid-campaign — the acceptance scenario for durable
jobs.  The API tests run a live localhost daemon in-process (spawned worker
processes, threaded HTTP server) to keep them fast.
"""

from __future__ import annotations

import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
import urllib.request
from pathlib import Path

import pytest

from repro.engine import Campaign, ResultCache, RunSpec, make_executor
from repro.engine.cli import main as cli_main
from repro.engine.spec import SweepSpec
from repro.serve import (
    AdmissionError,
    CampaignService,
    JobFailedError,
    JobRecord,
    JobStore,
    ServeClient,
    ServeDaemon,
    ServeError,
    WorkerPool,
    sweep_job_id,
)
from repro.utils.serialization import load_json, save_json

REPO_SRC = Path(__file__).resolve().parents[1] / "src"

#: A fast sweep payload (ablation_tuning points are milliseconds once the
#: thermal LU factorization is warm in a worker).
FAST_SWEEP = {
    "experiment_id": "ablation_tuning",
    "grid": {"shifts_nm": [[0.2], [0.5], [1.0]]},
}

#: A deliberately slow sweep (~0.4s/point) used where a test must observe a
#: job mid-flight (cancellation, admission control, crash-resume).
def slow_sweep(seeds: int = 10) -> dict:
    return {
        "experiment_id": "signal_mc",
        "grid": {"size": [96]},
        "base": {"trials": 8000},
        "seeds": list(range(seeds)),
    }


def _subprocess_env() -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{REPO_SRC}{os.pathsep}{env.get('PYTHONPATH', '')}"
    return env


def _free_port() -> int:
    with socket.socket() as sock:
        sock.bind(("127.0.0.1", 0))
        return sock.getsockname()[1]


# ---------------------------------------------------------------- job store
class TestJobStore:
    def _job(self, specs=None) -> JobRecord:
        specs = specs or [RunSpec("ablation_tuning", params={"shifts_nm": [0.2]})]
        return JobRecord(
            job_id=sweep_job_id(specs),
            sweep={"experiment_id": "ablation_tuning"},
            specs=tuple(spec.canonical() for spec in specs),
        )

    def test_roundtrip_and_events(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.save(self._job())
        assert job.state == "queued" and job.total == 1 and job.active
        loaded = store.get(job.job_id)
        assert loaded is not None
        assert loaded.to_dict() == job.to_dict()
        assert loaded.run_specs()[0].params == {"shifts_nm": [0.2]}
        store.append_event(job.job_id, "line one")
        store.append_event(job.job_id, "line two\n")
        assert store.events(job.job_id) == ["line one", "line two"]
        assert store.get("no-such-job") is None
        assert store.jobs()[0].job_id == job.job_id

    def test_job_id_is_content_addressed(self):
        a = [RunSpec("ablation_tuning", params={"shifts_nm": [0.2]}, seed=0)]
        b = [RunSpec("ablation_tuning", params={"shifts_nm": [0.2]}, seed=0)]
        c = [RunSpec("ablation_tuning", params={"shifts_nm": [0.3]}, seed=0)]
        assert sweep_job_id(a) == sweep_job_id(b)
        assert sweep_job_id(a) != sweep_job_id(c)
        assert sweep_job_id(a, version="other") != sweep_job_id(a)

    def test_update_and_requeue(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.save(self._job())
        job = store.update(job.job_id, state="running", done=1, executed=1)
        assert store.get(job.job_id).state == "running"
        requeued = job.requeued(note="resumed after restart")
        assert requeued.state == "queued"
        assert requeued.done == requeued.executed == 0
        assert requeued.note == "resumed after restart"
        with pytest.raises(KeyError):
            store.update("missing", state="done")

    def test_recover_requeues_only_active_jobs(self, tmp_path):
        store = JobStore(tmp_path)
        running = store.save(self._job())
        store.update(running.job_id, state="running", done=1)
        done_specs = [RunSpec("ablation_tuning", params={"shifts_nm": [9.0]})]
        done = store.save(self._job(done_specs))
        store.update(done.job_id, state="done")
        recovered = store.recover()
        assert [job.job_id for job in recovered] == [running.job_id]
        assert store.get(running.job_id).state == "queued"
        assert store.get(running.job_id).done == 0
        assert store.get(done.job_id).state == "done"


# ----------------------------------------------------- atomic cache writes
class TestAtomicWrites:
    def test_concurrent_threads_never_tear_json(self, tmp_path):
        """Satellite: hammer one path from many threads; readers always see
        a complete document (tmp names are unique per thread, rename is
        atomic)."""
        path = tmp_path / "record.json"
        errors: list[Exception] = []

        def writer(tag: int) -> None:
            try:
                for i in range(30):
                    save_json(path, {"tag": tag, "i": i, "pad": "x" * 2048})
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        def reader() -> None:
            try:
                for _ in range(200):
                    if path.is_file():
                        payload = load_json(path)
                        assert "pad" in payload and len(payload["pad"]) == 2048
            except Exception as exc:  # noqa: BLE001
                errors.append(exc)

        threads = [threading.Thread(target=writer, args=(t,)) for t in range(6)]
        threads += [threading.Thread(target=reader) for _ in range(2)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        assert load_json(path)["i"] == 29
        assert not list(tmp_path.glob("*.tmp*"))  # no leaked temporaries

    def test_result_cache_put_is_atomic_under_threads(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = RunSpec("ablation_tuning", params={"shifts_nm": [0.2]})
        from repro.engine.records import RunRecord

        record = RunRecord(
            fingerprint=cache.fingerprint(spec), spec=spec, payload={"v": 1}
        )
        threads = [
            threading.Thread(target=lambda: [cache.put(record) for _ in range(20)])
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        hit = cache.get(spec)
        assert hit is not None and hit.payload["v"] == 1


# ------------------------------------------------- worker pool as executor
class TestWorkerPoolExecutor:
    def test_worker_pool_runs_a_campaign(self, tmp_path):
        """The serve pool is a StreamExecutor: Campaign can use it directly."""
        pool = WorkerPool(workers=2, cache_dir=str(tmp_path))
        assert make_executor(pool) is pool
        pool.start()
        try:
            specs = [
                RunSpec("ablation_tuning", params={"shifts_nm": [shift]})
                for shift in (0.2, 0.5, 1.0)
            ]
            result = Campaign(specs, cache=tmp_path, workers=pool).run()
            assert result.executed == 3 and result.failures == 0
            assert result.executor_kind == "worker-pool"
            assert {r.provenance["executor"] for r in result.records} == {
                "serve-worker"
            }
            # Workers wrote through the shared cache: a serial re-run all hits.
            again = Campaign(specs, cache=tmp_path).run()
            assert again.cache_hits == 3 and again.executed == 0
        finally:
            pool.close()


# ------------------------------------------------------- live API daemon
@pytest.fixture(scope="class")
def daemon(tmp_path_factory):
    tmp = tmp_path_factory.mktemp("serve")
    service = CampaignService(
        jobstore_dir=tmp / "jobs", cache_dir=tmp / "cache", workers=2, max_jobs=8
    )
    daemon = ServeDaemon(service, port=0)
    daemon.start()
    yield daemon
    daemon.shutdown()


@pytest.mark.usefixtures("daemon")
class TestServeAPI:
    def test_healthz_and_routes(self, daemon):
        client = ServeClient(daemon.url)
        health = client.health()
        assert health["status"] == "ok" and health["workers"] == 2
        with pytest.raises(ServeError) as err:
            client.job("nope")
        assert err.value.status == 404
        with pytest.raises(ServeError) as err:
            client._request("GET", "/no/such/route")
        assert err.value.status == 404

    def test_submit_wait_results_and_dedupe(self, daemon):
        client = ServeClient(daemon.url)
        job = client.submit(FAST_SWEEP)
        assert job["created"] is True and job["total"] == 3
        events: list[str] = []
        final = client.wait(job["job_id"], timeout=90, on_event=events.append)
        assert final["state"] == "done"
        assert final["executed"] == 3 and final["failures"] == 0
        assert any("ablation_tuning" in line for line in events)
        assert any(line.startswith("-- done") for line in events)

        # Identical resubmit dedupes to the finished job: no new executions.
        again = client.submit(FAST_SWEEP)
        assert again["job_id"] == job["job_id"]
        assert again["created"] is False
        assert again["state"] == "done" and again["submits"] >= 2

        results = client.results(job["job_id"])
        assert len(results["payloads"]) == 3
        assert all(record["cached"] for record in results["records"])
        # Repeat fetch is pure cache reads and returns identical payloads.
        assert client.results(job["job_id"])["payloads"] == results["payloads"]
        assert any(j["job_id"] == job["job_id"] for j in client.jobs())

    def test_bad_sweep_is_400(self, daemon):
        client = ServeClient(daemon.url)
        for payload in (
            {"experiment_id": "no_such_experiment"},
            {"experiment_id": "ablation_tuning", "grid": {"bogus_param": [1]}},
            {"experiment_id": "ablation_tuning", "what": 1},
        ):
            with pytest.raises(ServeError) as err:
                client.submit(payload)
            assert err.value.status == 400

    def test_events_endpoint_plain_text(self, daemon):
        client = ServeClient(daemon.url)
        job = client.submit(FAST_SWEEP)  # dedupes to the finished job
        lines = client.events(job["job_id"])
        assert lines and lines[0].startswith("-- submitted")


class TestCancelAndAdmission:
    def test_cancel_and_429(self, tmp_path):
        service = CampaignService(
            jobstore_dir=tmp_path / "jobs",
            cache_dir=tmp_path / "cache",
            workers=1,
            max_jobs=1,
        )
        daemon = ServeDaemon(service, port=0)
        daemon.start()
        try:
            client = ServeClient(daemon.url)
            slow = client.submit(slow_sweep(seeds=30))
            assert slow["created"] is True

            # Queue bound reached: a *different* sweep is refused with 429...
            with pytest.raises(ServeError) as err:
                client.submit(FAST_SWEEP)
            assert err.value.status == 429
            # ...but the identical sweep still dedupes instead of erroring.
            assert client.submit(slow_sweep(seeds=30))["job_id"] == slow["job_id"]

            cancelled = client.cancel(slow["job_id"])
            assert cancelled["state"] == "cancelled"
            job = client.job(slow["job_id"])
            assert job["state"] == "cancelled" and job["done"] < job["total"]

            # Admission frees up: the fast sweep is now accepted and runs.
            fast = client.submit(FAST_SWEEP)
            final = client.wait(fast["job_id"], timeout=90)
            assert final["state"] == "done"

            # Resubmitting the cancelled sweep requeues it (resume semantics).
            resumed = client.submit(slow_sweep(seeds=30))
            assert resumed["job_id"] == slow["job_id"]
            assert resumed["state"] == "queued"
            client.cancel(slow["job_id"])
        finally:
            daemon.shutdown()

    def test_admission_error_direct(self, tmp_path):
        service = CampaignService(
            jobstore_dir=tmp_path / "jobs",
            cache_dir=tmp_path / "cache",
            workers=1,
            max_jobs=1,
        )
        # No scheduler running: the queued job never drains, so the second
        # distinct submit must hit the admission bound deterministically.
        service.submit(FAST_SWEEP)
        with pytest.raises(AdmissionError):
            service.submit(slow_sweep(seeds=2))


# ------------------------------------------------------------ crash-resume
class TestCrashResume:
    """Acceptance: SIGKILL a daemon mid-campaign; the restart completes the
    job executing only the runs missing from the result cache."""

    def _start_daemon(self, tmp: Path, port: int) -> subprocess.Popen:
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "serve",
                "--port", str(port), "--workers", "1",
                "--cache-dir", str(tmp / "cache"),
                "--jobstore-dir", str(tmp / "jobs"),
            ],
            env=_subprocess_env(),
            start_new_session=True,  # so killpg nukes daemon + workers
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
        )
        client = ServeClient(f"http://127.0.0.1:{port}", timeout=5.0)
        deadline = time.monotonic() + 60
        while True:
            try:
                client.health()
                return proc
            except ServeError:
                if proc.poll() is not None or time.monotonic() > deadline:
                    proc.kill()
                    raise AssertionError("serve daemon failed to come up")
                time.sleep(0.2)

    def _killpg(self, proc: subprocess.Popen, sig: int) -> None:
        try:
            os.killpg(os.getpgid(proc.pid), sig)
        except ProcessLookupError:
            pass
        proc.wait(timeout=10)

    @pytest.mark.slow
    def test_sigkill_mid_campaign_resumes_from_cache(self, tmp_path):
        port = _free_port()
        sweep = slow_sweep(seeds=8)  # ~0.4s/point, 1 worker => ~3s campaign
        cache_glob = tmp_path / "cache" / "signal_mc"

        daemon = self._start_daemon(tmp_path, port)
        try:
            client = ServeClient(f"http://127.0.0.1:{port}", timeout=5.0)
            job = client.submit(sweep)
            job_id = job["job_id"]
            assert job["total"] == 8
            deadline = time.monotonic() + 60
            while len(list(cache_glob.glob("*.json"))) < 2:
                assert time.monotonic() < deadline, "no runs completed in time"
                time.sleep(0.05)
        finally:
            self._killpg(daemon, signal.SIGKILL)  # kill -9 daemon AND worker

        cached_at_kill = len(list(cache_glob.glob("*.json")))
        assert 0 < cached_at_kill < 8, "kill must land mid-campaign"
        on_disk = json.loads((tmp_path / "jobs" / f"{job_id}.json").read_text())
        assert on_disk["state"] in ("running", "queued")  # never torn, not done

        daemon = self._start_daemon(tmp_path, port)
        try:
            client = ServeClient(f"http://127.0.0.1:{port}", timeout=5.0)
            final = client.wait(job_id, timeout=90)
            assert final["state"] == "done"
            assert final["note"] == "resumed after restart"
            # THE durability contract: the restart executed exactly the runs
            # the cache did not already hold, and served the rest as hits.
            assert final["cache_hits"] == cached_at_kill
            assert final["executed"] == 8 - cached_at_kill
            assert len(list(cache_glob.glob("*.json"))) == 8

            # Repeat POST of the same spec: dedupe to the finished job,
            # zero new executions, fully cached results.
            resubmit = client.submit(sweep)
            assert resubmit["job_id"] == job_id
            assert resubmit["created"] is False and resubmit["state"] == "done"
            assert resubmit["executed"] == final["executed"]  # nothing new ran
            results = client.results(job_id)
            assert len(results["payloads"]) == 8
            assert all(record["cached"] for record in results["records"])
        finally:
            self._killpg(daemon, signal.SIGTERM)


# ------------------------------------------------------------------- CLI
class TestServeCli:
    def test_version_flag(self, capsys):
        from repro.version import __version__

        with pytest.raises(SystemExit) as exit_info:
            cli_main(["--version"])
        assert exit_info.value.code == 0
        assert __version__ in capsys.readouterr().out

    def test_submit_and_jobs_cli(self, tmp_path, capsys):
        service = CampaignService(
            jobstore_dir=tmp_path / "jobs", cache_dir=tmp_path / "cache", workers=1
        )
        daemon = ServeDaemon(service, port=0)
        daemon.start()
        try:
            argv = [
                "submit", "ablation_tuning", "--grid", "shifts_nm=[0.2],[0.6]",
                "--url", daemon.url, "--quiet",
            ]
            assert cli_main(argv) == 0
            captured = capsys.readouterr()
            assert "2 points" in captured.err
            assert "done: 2 points" in captured.out

            assert cli_main(["jobs", "--url", daemon.url]) == 0
            listing = capsys.readouterr().out
            assert "ablation_tuning" in listing and "done" in listing

            job_id = service.jobs()[0].job_id
            assert cli_main(["jobs", job_id, "--url", daemon.url]) == 0
            assert "state: done" in capsys.readouterr().out
            assert cli_main(["jobs", job_id, "--events", "--url", daemon.url]) == 0
            assert "-- submitted" in capsys.readouterr().out
            assert cli_main(["jobs", job_id, "--results", "--url", daemon.url]) == 0
            payload = json.loads(capsys.readouterr().out)
            assert len(payload["payloads"]) == 2
        finally:
            daemon.shutdown()

    def test_submit_unreachable_daemon_fails_cleanly(self, capsys):
        argv = [
            "submit", "ablation_tuning", "--url", "http://127.0.0.1:1",
        ]
        assert cli_main(argv) == 1
        assert "cannot reach repro serve" in capsys.readouterr().err

    @pytest.mark.slow
    def test_sweep_sigint_exits_gracefully(self, tmp_path):
        """Satellite: Ctrl-C mid-sweep flushes completed runs, no traceback."""
        proc = subprocess.Popen(
            [
                sys.executable, "-m", "repro", "sweep", "signal_mc",
                "--grid", "size=96", "--set", "trials=8000",
                "--seeds", ",".join(str(s) for s in range(30)),
                "--serial", "--quiet", "--cache-dir", str(tmp_path),
            ],
            env=_subprocess_env(),
            start_new_session=True,
            stdout=subprocess.PIPE,
            stderr=subprocess.PIPE,
            text=True,
        )
        cache_glob = tmp_path / "signal_mc"
        deadline = time.monotonic() + 60
        while len(list(cache_glob.glob("*.json"))) < 1:
            assert time.monotonic() < deadline, "sweep made no progress"
            time.sleep(0.05)
        os.killpg(os.getpgid(proc.pid), signal.SIGINT)
        _, stderr = proc.communicate(timeout=30)
        assert proc.returncode == 130, stderr
        assert "Traceback" not in stderr
        assert "interrupted" in stderr
        assert "re-run the same sweep to resume" in stderr
        flushed = len(list(cache_glob.glob("*.json")))
        assert flushed >= 1  # completed points survived the interrupt


# ------------------------------------------------- per-client admission quota
class TestPerClientQuota:
    def test_quota_is_charged_per_identity(self, tmp_path):
        """Satellite: each X-Repro-Client identity gets its own active-job
        bound under the global queue bound."""
        service = CampaignService(
            jobstore_dir=tmp_path / "jobs",
            cache_dir=tmp_path / "cache",
            workers=1,
            max_jobs=8,
            max_jobs_per_client=1,
        )
        # No scheduler running: jobs stay queued, so the bounds are exact.
        service.submit(FAST_SWEEP, client="alice")
        with pytest.raises(AdmissionError) as err:
            service.submit(slow_sweep(seeds=2), client="alice")
        assert "alice" in str(err.value) or "jobs active" in str(err.value)
        # A different identity — and the anonymous bucket — are unaffected.
        service.submit(slow_sweep(seeds=2), client="bob")
        service.submit(slow_sweep(seeds=3))
        with pytest.raises(AdmissionError):
            service.submit(slow_sweep(seeds=4))  # anonymous bucket now full
        # Identical resubmission still dedupes instead of erroring.
        job, created = service.submit(FAST_SWEEP, client="alice")
        assert created is False

    def test_http_429_with_retry_after_and_client_on_job(self, tmp_path):
        service = CampaignService(
            jobstore_dir=tmp_path / "jobs",
            cache_dir=tmp_path / "cache",
            workers=1,
            max_jobs=8,
            max_jobs_per_client=1,
        )
        daemon = ServeDaemon(service, port=0)
        daemon.start()
        try:
            alice = ServeClient(daemon.url, client="alice", retries=0)
            slow = alice.submit(slow_sweep(seeds=30))
            assert alice.job(slow["job_id"])["client"] == "alice"
            with pytest.raises(ServeError) as err:
                alice.submit(FAST_SWEEP)
            assert err.value.status == 429
            assert err.value.payload.get("retry_after") is not None
            # Another identity still gets in and completes normally.
            bob = ServeClient(daemon.url, client="bob", retries=0)
            fast = bob.submit(FAST_SWEEP)
            assert bob.wait(fast["job_id"], timeout=90)["state"] == "done"
            assert service.health()["max_jobs_per_client"] == 1
            alice.cancel(slow["job_id"])
        finally:
            daemon.shutdown()


# ------------------------------------------------------- streaming follow
class TestEventStreaming:
    def test_chunked_follow_and_longpoll_fallback(self, tmp_path):
        """Satellite: ``?follow=1`` streams chunked progress lines ending at
        the terminal state; ``longpoll=1`` keeps the legacy unframed shape."""
        service = CampaignService(
            jobstore_dir=tmp_path / "jobs", cache_dir=tmp_path / "cache", workers=2
        )
        daemon = ServeDaemon(service, port=0)
        daemon.start()
        try:
            client = ServeClient(daemon.url)
            job_id = client.submit(FAST_SWEEP)["job_id"]
            chunked = list(client.stream_events(job_id))  # terminates on done
            assert any(line.startswith("-- submitted") for line in chunked)
            assert any(line.startswith("-- done") for line in chunked)
            assert not any(line.startswith(":") for line in chunked)
            assert client.job(job_id)["state"] == "done"
            # The long-poll fallback replays the same history and also ends.
            longpoll = list(client.stream_events(job_id, longpoll=True))
            assert longpoll == chunked
        finally:
            daemon.shutdown()

    def test_idle_stream_emits_keepalive_comments(self, tmp_path):
        """A coordinator with no capacity produces no events — the chunked
        stream stays alive via ``: keep-alive`` comment chunks."""
        service = CampaignService(
            jobstore_dir=tmp_path / "jobs", cache_dir=tmp_path / "cache", workers=0
        )
        daemon = ServeDaemon(service, port=0)
        daemon.start()
        try:
            client = ServeClient(daemon.url)
            job_id = client.submit(FAST_SWEEP)["job_id"]  # queued forever
            request = urllib.request.Request(
                f"{daemon.url}/jobs/{job_id}/events?follow=1"
            )
            saw_comment = False
            with urllib.request.urlopen(request, timeout=10) as response:
                deadline = time.monotonic() + 8
                for raw in response:
                    if raw.decode(errors="replace").startswith(":"):
                        saw_comment = True
                        break
                    assert time.monotonic() < deadline
            assert saw_comment, "no keep-alive comment within the idle window"
        finally:
            daemon.shutdown()


# ------------------------------------------------ typed job-failure surface
class TestWaitFailureSurface:
    def test_wait_raises_typed_error_on_terminal_failure(self, tmp_path):
        """Satellite: wait() distinguishes 'the job ended badly' from
        transport errors via JobFailedError carrying the job document."""
        service = CampaignService(
            jobstore_dir=tmp_path / "jobs", cache_dir=tmp_path / "cache", workers=1
        )
        daemon = ServeDaemon(service, port=0)
        daemon.start()
        try:
            client = ServeClient(daemon.url)
            job_id = client.submit(slow_sweep(seeds=30))["job_id"]
            client.cancel(job_id)
            with pytest.raises(JobFailedError) as err:
                client.wait(job_id, timeout=30)
            assert err.value.state == "cancelled"
            assert err.value.job["job_id"] == job_id
            assert err.value.quarantined == []
            assert err.value.status == 0  # not a transport error
            assert isinstance(err.value, ServeError)  # old handlers still catch
            # Opt-out path returns the terminal document as before.
            doc = client.wait(job_id, timeout=30, raise_on_failure=False)
            assert doc["state"] == "cancelled"
        finally:
            daemon.shutdown()


# --------------------------------------- restart recovery with remote leases
class TestLeaseRecovery:
    def test_restart_requeues_leased_runs_without_rerunning_cached(self, tmp_path):
        """Satellite: a restart requeues runs whose lease-holder node is gone
        (leases are deliberately in-memory) and serves already-completed
        points straight from the cache — no re-execution."""
        specs = SweepSpec(
            experiment_id=FAST_SWEEP["experiment_id"], grid=FAST_SWEEP["grid"]
        ).expand()
        # Two of three points are already in the shared result cache.
        warm = Campaign(specs[:2], cache=tmp_path / "cache").run()
        assert warm.failures == 0 and warm.executed == 2

        # First life: a coordinator-only service leases the remaining point
        # to a node that will never come back.
        first = CampaignService(
            jobstore_dir=tmp_path / "jobs", cache_dir=tmp_path / "cache", workers=0
        )
        first.submit(FAST_SWEEP)
        first.federation.register_node("vanishing", workers=2)
        granted = []
        deadline = time.monotonic() + 30
        first.start()
        try:
            while time.monotonic() < deadline and not granted:
                granted = first.federation.claim("vanishing", max_runs=2)
                time.sleep(0.05)
        finally:
            first.shutdown()
        assert granted, "the federation never leased the uncached point"

        # Second life: same jobstore + cache, local workers, no such node.
        second = CampaignService(
            jobstore_dir=tmp_path / "jobs", cache_dir=tmp_path / "cache", workers=1
        )
        second.start()
        try:
            recovered = [job.job_id for job in second.store.jobs()]
            job_id = recovered[0]
            deadline = time.monotonic() + 60
            while time.monotonic() < deadline:
                job = second.job(job_id)
                if job is not None and job.finished:
                    break
                time.sleep(0.05)
            assert job is not None and job.state == "done"
            assert job.done == job.total == 3
            # Cached points were *not* re-run: only the leased one executed.
            assert job.cache_hits >= 2
            assert job.executed <= 1
            assert second.federation.nodes() == []  # the holder is simply gone
        finally:
            second.shutdown()
