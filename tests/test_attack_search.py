"""Tests for repro.attacks.search: spaces, optimizers, Pareto, driver, CLI.

The driver tests exercise the three evaluation backends (stacked in-process,
serial/process-pool campaign, live ``repro serve`` daemon) against real
``cnn_mnist`` candidate evaluations — the workload trains once per process
and is cached, so these stay fast.  The kill-resume test drives the real CLI
in a subprocess and SIGKILLs it mid-search to prove the content-addressed
cache resumes interrupted searches.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import time
from pathlib import Path

import numpy as np
import pytest

from repro.attacks.hotspot import HotspotAttackConfig
from repro.attacks.registry import PARAM_METADATA_KEYS, attack_kind_info, get_attack_kind
from repro.attacks.search import (
    AttackSearch,
    AttackSearchConfig,
    Candidate,
    MuPlusLambdaES,
    ParetoPoint,
    RandomSearch,
    SuccessiveHalving,
    dominates,
    front_dominates,
    front_payload,
    make_optimizer,
    pareto_front,
    space_for_kind,
)
from repro.attacks.search.space import Dimension, quantize
from repro.engine.cache import ResultCache
from repro.engine.cli import main as cli_main
from repro.utils.validation import ValidationError

REPO_ROOT = Path(__file__).resolve().parent.parent


# ------------------------------------------------------------- search space
class TestSearchSpace:
    def test_laser_power_space_dims(self):
        space = space_for_kind("laser_power")
        assert [dim.name for dim in space.dims] == ["fraction", "residual_power"]
        fraction, residual = space.dims
        assert (fraction.lower, fraction.upper) == (0.005, 0.10)
        assert (residual.lower, residual.upper) == (0.0, 1.0)

    def test_hotspot_space_excludes_unsearchable_fields(self):
        space = space_for_kind("hotspot")
        names = [dim.name for dim in space.dims]
        assert names == ["fraction", "heater_power_mw"]
        assert space.dims[1].log  # heater power is sampled logarithmically

    def test_triggered_space_is_fraction_only(self):
        # every triggered params field opts out with search=False
        space = space_for_kind("triggered")
        assert [dim.name for dim in space.dims] == ["fraction"]

    def test_decode_respects_bounds_and_quantizes(self):
        space = space_for_kind("laser_power", fraction_range=(0.01, 0.08))
        lo = space.decode(np.zeros(space.size))
        hi = space.decode(np.ones(space.size))
        assert lo == {"fraction": 0.01, "params": {"residual_power": 0.0}}
        assert hi == {"fraction": 0.08, "params": {"residual_power": 1.0}}
        mid = space.decode(np.array([1 / 3, 2 / 3]))
        assert mid["fraction"] == quantize(0.01 + (0.08 - 0.01) / 3)
        assert mid["params"]["residual_power"] == quantize(2 / 3)

    def test_log_dimension_decodes_geometrically(self):
        dim = Dimension(name="p", lower=1.0, upper=100.0, log=True)
        assert dim.decode(0.0) == 1.0
        assert dim.decode(1.0) == 100.0
        assert dim.decode(0.5) == 10.0  # geometric midpoint

    def test_categorical_dimension_decode(self):
        dim = Dimension(name="mode", kind="categorical", choices=("a", "b", "c"))
        assert [dim.decode(u) for u in (0.0, 0.4, 0.9, 1.0)] == ["a", "b", "c", "c"]

    def test_integer_dimension_decode(self):
        dim = Dimension(name="rows", kind="integer", lower=4, upper=8)
        assert dim.decode(0.0) == 4 and dim.decode(1.0) == 8
        assert isinstance(dim.decode(0.5), int)

    def test_invalid_fraction_range_rejected(self):
        with pytest.raises(ValidationError):
            space_for_kind("hotspot", fraction_range=(0.0, 0.1))
        with pytest.raises(ValidationError):
            space_for_kind("hotspot", fraction_range=(0.2, 0.1))

    def test_quantize_six_significant_digits(self):
        assert quantize(0.123456789) == 0.123457
        assert quantize(0.0) == 0.0
        assert quantize(1234567.89) == 1234570.0


# ------------------------------------------- bounds metadata and validation
class TestParamBounds:
    def test_attack_kind_info_exposes_param_info(self):
        rows = {row["kind"]: row for row in attack_kind_info()}
        info = rows["hotspot"]["param_info"]
        assert info["heater_power_mw"]["bounds"] == (1.0, 2000.0)
        assert info["heater_power_mw"]["log"] is True
        assert info["heater_power_mw"]["searchable"] is True
        assert info["grid_rows"]["searchable"] is False
        assert rows["triggered"]["param_info"]["trigger"]["choices"] == (
            "always_on", "inference_count", "external",
        )
        assert "bounds" in PARAM_METADATA_KEYS and "choices" in PARAM_METADATA_KEYS

    def test_coerce_params_rejects_out_of_bounds_mapping(self):
        with pytest.raises(ValidationError, match="hotspot.heater_power_mw"):
            get_attack_kind("hotspot").coerce_params({"heater_power_mw": 1e6})
        with pytest.raises(ValidationError, match="residual_power"):
            get_attack_kind("laser_power").coerce_params({"residual_power": -0.1})
        with pytest.raises(ValidationError, match="leakage_power_mw"):
            get_attack_kind("crosstalk").coerce_params({"leakage_power_mw": 0.0})

    def test_coerce_params_rejects_out_of_bounds_instance(self):
        config = HotspotAttackConfig(grid_rows=2)
        with pytest.raises(ValidationError, match="hotspot.grid_rows"):
            get_attack_kind("hotspot").coerce_params(config)

    def test_coerce_params_rejects_bad_choice(self):
        with pytest.raises(ValidationError, match="trigger"):
            get_attack_kind("triggered").coerce_params({"trigger": "bogus"})

    def test_coerce_params_accepts_in_bounds_values(self):
        params = get_attack_kind("hotspot").coerce_params(
            {"heater_power_mw": 1500.0}
        )
        assert params.heater_power_mw == 1500.0
        assert get_attack_kind("laser_power").coerce_params(
            {"residual_power": 0.0}
        ).residual_power == 0.0


# --------------------------------------------------------------- optimizers
def _space():
    return space_for_kind("laser_power")


class TestOptimizers:
    def test_random_search_is_seed_deterministic(self):
        a = RandomSearch(_space(), seed=7, generation_size=5, placements=1)
        b = RandomSearch(_space(), seed=7, generation_size=5, placements=1)
        c = RandomSearch(_space(), seed=8, generation_size=5, placements=1)
        asked_a, asked_b, asked_c = a.ask(), b.ask(), c.ask()
        assert [x.vector for x in asked_a] == [x.vector for x in asked_b]
        assert [x.vector for x in asked_a] != [x.vector for x in asked_c]
        assert all(0.0 <= v <= 1.0 for cand in asked_a for v in cand.vector)
        assert all(cand.cost == 1 for cand in asked_a)
        assert not a.done

    def test_candidate_decodes_through_space(self):
        opt = RandomSearch(_space(), seed=0, generation_size=2, placements=3)
        candidate = opt.ask()[0]
        assert isinstance(candidate, Candidate)
        assert set(candidate.values) == {"fraction", "params"}
        assert candidate.placements == 3

    def test_es_keeps_top_mu_parents(self):
        opt = MuPlusLambdaES(
            _space(), seed=1, generation_size=4, placements=1, mu=2, sigma=0.1
        )
        first = opt.ask()  # random cold start
        opt.tell(first, [0.1, 0.9, 0.3, 0.7])
        parents = [tuple(vec) for vec, _ in opt._parents]
        assert parents == [first[1].vector, first[3].vector]
        children = opt.ask()
        assert len(children) == 4
        # deterministic: an identical optimizer retraces the same children
        twin = MuPlusLambdaES(
            _space(), seed=1, generation_size=4, placements=1, mu=2, sigma=0.1
        )
        twin.tell(twin.ask(), [0.1, 0.9, 0.3, 0.7])
        assert [c.vector for c in twin.ask()] == [c.vector for c in children]

    def test_halving_schedule_and_done(self):
        opt = SuccessiveHalving(
            _space(), seed=2, generation_size=4, placements=1, eta=2
        )
        rung0 = opt.ask()
        assert len(rung0) == 4 and all(c.placements == 1 for c in rung0)
        opt.tell(rung0, [0.4, 0.1, 0.8, 0.2])
        rung1 = opt.ask()
        assert len(rung1) == 2 and all(c.placements == 2 for c in rung1)
        assert rung1[0].vector == rung0[2].vector  # best survivor first
        opt.tell(rung1, [0.5, 0.6])
        rung2 = opt.ask()
        assert len(rung2) == 1 and rung2[0].placements == 4
        opt.tell(rung2, [0.7])
        assert opt.done and opt.ask() == []

    def test_make_optimizer_strips_foreign_kwargs(self):
        opt = make_optimizer(
            "random", _space(), seed=0, generation_size=2, placements=1,
            mu=None, sigma=0.3, eta=3,
        )
        assert isinstance(opt, RandomSearch)
        with pytest.raises(ValidationError):
            make_optimizer("annealing", _space())


# ------------------------------------------------------------------- pareto
class TestPareto:
    def test_dominates(self):
        a = ParetoPoint(stealth=10, damage=0.5)
        assert dominates(a, ParetoPoint(stealth=20, damage=0.5))
        assert dominates(a, ParetoPoint(stealth=10, damage=0.4))
        assert not dominates(a, ParetoPoint(stealth=10, damage=0.5))
        assert not dominates(a, ParetoPoint(stealth=5, damage=0.6))

    def test_pareto_front_filters_and_orders(self):
        points = [
            ParetoPoint(stealth=50, damage=0.30, label="mid"),
            ParetoPoint(stealth=10, damage=0.10, label="stealthy"),
            ParetoPoint(stealth=50, damage=0.20, label="dominated"),
            ParetoPoint(stealth=100, damage=0.90, label="loud"),
            ParetoPoint(stealth=10, damage=0.10, label="duplicate"),
        ]
        front = pareto_front(points)
        assert [p.label for p in front] == ["stealthy", "mid", "loud"]

    def test_front_dominates(self):
        reference = [
            ParetoPoint(stealth=100, damage=0.2),
            ParetoPoint(stealth=500, damage=0.5),
        ]
        better = [ParetoPoint(stealth=80, damage=0.6)]
        assert front_dominates(better, reference)
        partial = [ParetoPoint(stealth=80, damage=0.3)]  # misses the 0.5 point
        assert not front_dominates(partial, reference)
        assert not front_dominates([], reference)
        assert not front_dominates(reference, reference)  # equal: no strict win
        assert front_dominates(
            [ParetoPoint(stealth=80, damage=0.49)], reference, tol=0.02
        )

    def test_front_payload(self):
        payload = front_payload(
            [ParetoPoint(stealth=3, damage=0.25, label="x", meta={"f": 0.01})]
        )
        assert payload == [
            {
                "num_attacked_mrs": 3,
                "accuracy_drop": 0.25,
                "label": "x",
                "meta": {"f": 0.01},
            }
        ]


# ------------------------------------------------------------------- driver
def _config(**overrides) -> AttackSearchConfig:
    defaults = dict(
        kind="laser_power",
        model="cnn_mnist",
        optimizer="random",
        budget=6,
        generation_size=3,
        placements=1,
        seed=3,
    )
    defaults.update(overrides)
    return AttackSearchConfig(**defaults)


class TestAttackSearchDriver:
    def test_config_validation(self):
        with pytest.raises(ValidationError):
            _config(optimizer="annealing")
        with pytest.raises(ValidationError):
            _config(budget=0)

    def test_backends_produce_identical_trajectories(self, tmp_path):
        batched = AttackSearch(_config()).run()
        serial = AttackSearch(_config(), workers="serial").run()
        pooled = AttackSearch(
            _config(), cache=ResultCache(tmp_path / "pool"), workers=2
        ).run()
        assert batched.trajectory_json() == serial.trajectory_json()
        assert batched.trajectory_json() == pooled.trajectory_json()
        assert front_payload(batched.front) == front_payload(pooled.front)
        assert batched.evaluations == 6 and batched.generations == 2
        assert len(batched.front) >= 1
        assert batched.baseline > 0.5  # trained workload, sane clean accuracy

    def test_cache_resume_skips_completed_candidates(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        fresh = AttackSearch(_config(), cache=cache).run()
        assert fresh.executed == len(fresh.candidates) and fresh.cache_hits == 0
        again = AttackSearch(_config(), cache=cache).run()
        assert again.executed == 0
        assert again.cache_hits == len(fresh.candidates)
        assert again.trajectory_json() == fresh.trajectory_json()

    def test_partial_cache_resumes_only_missing_candidates(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        # a shorter run under the same seed covers exactly the first generation
        partial = AttackSearch(_config(budget=3), cache=cache).run()
        assert partial.executed == 3
        full = AttackSearch(_config(), cache=cache).run()
        assert full.cache_hits == 3 and full.executed == len(full.candidates) - 3
        reference = AttackSearch(_config()).run()
        assert full.trajectory_json() == reference.trajectory_json()

    def test_evolutionary_and_halving_run_end_to_end(self):
        es = AttackSearch(
            _config(optimizer="evolutionary", budget=6, mu=1)
        ).run()
        halving = AttackSearch(
            _config(optimizer="halving", budget=8, generation_size=4)
        ).run()
        assert es.generations == 2 and len(es.candidates) == 6
        assert halving.generations >= 2
        # halving re-evaluates survivors at doubled placements
        assert {c["placements"] for c in halving.candidates} >= {1, 2}

    def test_payload_shape_and_best(self):
        result = AttackSearch(_config()).run()
        payload = result.to_payload()
        assert payload["kind"] == "laser_power"
        assert payload["num_candidates"] == len(payload["candidates"])
        assert payload["evaluations"] == 6
        for key in ("executed", "cache_hits", "duration_s"):
            assert key not in payload  # payload must stay execution-independent
        best = payload["best"]
        assert best["damage_per_mr"] == max(
            c["damage_per_mr"] for c in payload["candidates"]
        )
        fronts = payload["front"]
        stealths = [p["num_attacked_mrs"] for p in fronts]
        assert stealths == sorted(stealths)

    def test_kill_resume_from_result_cache(self, tmp_path):
        """SIGKILL a real CLI search mid-run; the rerun resumes from cache."""
        cache_dir = tmp_path / "cache"
        argv = [
            sys.executable, "-m", "repro", "search", "laser_power",
            "--budget", "12", "--generation", "4", "--placements", "1",
            "--seed", "5", "--cache-dir", str(cache_dir),
        ]
        env = dict(os.environ)
        env["PYTHONPATH"] = str(REPO_ROOT / "src") + os.pathsep + env.get(
            "PYTHONPATH", ""
        )
        proc = subprocess.Popen(
            argv, env=env, cwd=REPO_ROOT,
            stdout=subprocess.DEVNULL, stderr=subprocess.DEVNULL,
        )
        try:
            deadline = time.monotonic() + 120
            while time.monotonic() < deadline:
                if proc.poll() is not None:
                    break  # finished before we could kill it: full-cache resume
                done = len(list(ResultCache(cache_dir).records("fig7_candidate")))
                if done >= 1:
                    proc.send_signal(signal.SIGKILL)
                    break
                time.sleep(0.05)
            else:
                pytest.fail("search subprocess produced no cached record in time")
        finally:
            proc.kill()
            proc.wait()
        cached = len(list(ResultCache(cache_dir).records("fig7_candidate")))
        assert cached >= 1
        config = _config(budget=12, generation_size=4, seed=5)
        resumed = AttackSearch(config, cache=ResultCache(cache_dir)).run()
        assert resumed.cache_hits >= 1
        assert resumed.cache_hits + resumed.executed == len(resumed.candidates)
        reference = AttackSearch(config).run()  # fresh, no cache
        assert resumed.trajectory_json() == reference.trajectory_json()


# -------------------------------------------------------------------- serve
class TestServeBackend:
    @pytest.fixture(scope="class")
    def daemon(self, tmp_path_factory):
        from repro.serve.api import ServeDaemon
        from repro.serve.service import CampaignService

        tmp = tmp_path_factory.mktemp("search-serve")
        service = CampaignService(
            jobstore_dir=tmp / "jobs", cache_dir=tmp / "cache", workers=2
        )
        daemon = ServeDaemon(service, port=0)
        daemon.start()
        yield daemon
        daemon.shutdown()

    def test_search_generations_run_as_serve_sweeps(self, daemon):
        from repro.serve.client import ServeClient

        config = _config(budget=4, generation_size=2)
        search = AttackSearch(config, client=ServeClient(daemon.url))
        assert search.evaluator.name == "serve"
        remote = search.run()
        local = AttackSearch(config).run()
        assert remote.trajectory_json() == local.trajectory_json()
        assert remote.executed + remote.cache_hits == len(remote.candidates)


# ----------------------------------------------------------- experiments/CLI
class TestExperimentAndCli:
    def test_fig7_adversarial_experiment_matches_driver(self):
        from repro.analysis.experiments import get_experiment

        payload = get_experiment("fig7_adversarial").run(
            {"kind": "laser_power", "budget": 4, "generation_size": 2,
             "placements": 1},
            seed=3,
        )
        direct = AttackSearch(
            _config(budget=4, generation_size=2, seed=3)
        ).run().to_payload()
        assert payload == direct

    def test_cli_search_json_and_cache_determinism(self, tmp_path, capsys):
        argv = [
            "search", "laser_power", "--budget", "4", "--generation", "2",
            "--placements", "1", "--seed", "3", "--json", "-q",
            "--cache-dir", str(tmp_path),
        ]
        assert cli_main(argv) == 0
        first = json.loads(capsys.readouterr().out)
        assert cli_main(argv) == 0  # second run: all cache hits
        second = json.loads(capsys.readouterr().out)
        assert first == second
        assert first["front"] and first["num_candidates"] == 4

    def test_cli_search_rejects_bad_args(self, capsys):
        assert cli_main(
            ["search", "laser_power", "--fraction-range", "nope"]
        ) == 2
        assert "fraction-range" in capsys.readouterr().err
        assert cli_main(["search", "not_a_kind", "--budget", "2"]) == 1
        assert "not_a_kind" in capsys.readouterr().err

    def test_cli_attacks_shows_bounds_and_choices(self, capsys):
        assert cli_main(["attacks"]) == 0
        out = capsys.readouterr().out
        assert "[1..2000,log]" in out  # hotspot heater bounds
        assert "{always_on|inference_count|external}" in out
        assert cli_main(["attacks", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        by_kind = {row["kind"]: row for row in payload["kinds"]}
        assert by_kind["laser_power"]["param_info"]["residual_power"]["bounds"] == [
            0.0, 1.0,
        ]

    def test_cli_report_includes_pareto_section(self, tmp_path, capsys):
        run = [
            "search", "laser_power", "--budget", "4", "--generation", "2",
            "--placements", "1", "--seed", "3", "-q",
            "--cache-dir", str(tmp_path),
        ]
        assert cli_main(run) == 0
        capsys.readouterr()
        assert cli_main(["report", "--cache-dir", str(tmp_path)]) == 0
        out = capsys.readouterr().out
        assert "Pareto front —" in out and "laser_power" in out
        assert cli_main(["report", "--cache-dir", str(tmp_path), "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        key = "cnn_mnist/-/laser_power"
        assert payload["pareto"][key]
        assert all(
            point["accuracy_drop"] >= 0 or True for point in payload["pareto"][key]
        )

    def test_search_bench_report_formatting(self):
        from repro.analysis.search_bench import format_search_bench_report

        report = format_search_bench_report(
            {
                "version": "0", "python": "3", "numpy": "2",
                "model": "cnn_mnist", "seed": 0,
                "throughput": {
                    "kind": "laser_power", "block": "fc", "budget": 32,
                    "batched_candidates_per_s": 300.0,
                    "serial_candidates_per_s": 30.0,
                    "speedup_batched_vs_serial": 10.0,
                    "trajectories_identical": True,
                },
                "kinds": {
                    "laser_power": {
                        "grid": {
                            "fractions": [0.01], "placements": 8, "budget": 8,
                            "points": [
                                {"num_attacked_mrs": 700, "accuracy_drop": 0.1,
                                 "label": "g"}
                            ],
                        },
                        "optimizers": {
                            "random": {
                                "front": [
                                    {"num_attacked_mrs": 600,
                                     "accuracy_drop": 0.4, "label": "s"}
                                ],
                                "best_drop_mean": 0.4,
                                "dominates_grid": True,
                            },
                        },
                        "any_dominates_grid": True,
                    },
                },
                "any_dominates_grid": True,
            }
        )
        assert "DOMINATES grid" in report
        assert "any searched front dominates its fixed grid: True" in report
