"""Property-based tests (hypothesis) on core numerical invariants."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.accelerator.config import BlockGeometry
from repro.accelerator.blocks import coordinate_to_slot, slot_to_coordinate
from repro.nn import functional as F
from repro.photonics.dac_adc import DAC
from repro.photonics.microring import MicroringResonator
from repro.photonics.thermal_sensitivity import ThermalSensitivity
from repro.datasets.transforms import to_one_hot

_settings = settings(max_examples=60, deadline=None)


class TestPhotonicInvariants:
    @_settings
    @given(value=st.floats(min_value=0.0, max_value=1.0))
    def test_imprint_roundtrip_within_extinction_floor(self, value):
        ring = MicroringResonator()
        ring.imprint(value)
        t_min = 10.0 ** (-ring.extinction_ratio_db / 10.0)
        recovered = ring.effective_value()
        assert recovered >= -1e-9
        assert abs(recovered - np.clip(value, t_min, 0.99)) < 0.02 or value > 0.98

    @_settings
    @given(value=st.floats(min_value=0.0, max_value=0.97))
    def test_drop_imprint_monotone(self, value):
        """A larger programmed drop value never produces a smaller coupled value."""
        ring_low = MicroringResonator()
        ring_high = MicroringResonator()
        ring_low.imprint_drop(value)
        ring_high.imprint_drop(min(value + 0.02, 0.99))
        assert ring_high.effective_drop_value() >= ring_low.effective_drop_value() - 1e-6

    @_settings
    @given(
        wavelength=st.floats(min_value=1300.0, max_value=1600.0),
        delta_t=st.floats(min_value=0.0, max_value=100.0),
    )
    def test_thermal_shift_non_negative_and_linear(self, wavelength, delta_t):
        sens = ThermalSensitivity()
        shift = sens.resonance_shift_nm(wavelength, delta_t)
        assert shift >= 0.0
        # Halving is only exact in the normal float range; the abs tolerance
        # covers subnormal delta_t, where scaling by 2 rounds.
        half_shift = sens.resonance_shift_nm(wavelength, delta_t / 2.0)
        assert shift == pytest.approx(2.0 * half_shift, rel=1e-12, abs=1e-300)

    @_settings
    @given(
        values=st.lists(st.floats(min_value=-2.0, max_value=2.0), min_size=1, max_size=32),
        bits=st.integers(min_value=2, max_value=12),
    )
    def test_quantization_error_bounded_by_step(self, values, bits):
        dac = DAC(bits=bits)
        array = np.asarray(values)
        error = dac.quantization_error(np.clip(array, -1.0, 1.0))
        assert np.all(np.abs(error) <= dac.step / 2 + 1e-12)


class TestMappingInvariants:
    @_settings
    @given(
        units=st.integers(min_value=1, max_value=6),
        rows=st.integers(min_value=1, max_value=6),
        cols=st.integers(min_value=1, max_value=6),
        data=st.data(),
    )
    def test_slot_coordinate_roundtrip(self, units, rows, cols, data):
        geometry = BlockGeometry(units, rows, cols)
        slot = data.draw(st.integers(min_value=0, max_value=geometry.capacity - 1))
        coord = slot_to_coordinate(slot, geometry)
        assert 0 <= coord.unit < units
        assert 0 <= coord.row < rows
        assert 0 <= coord.col < cols
        assert coordinate_to_slot(coord, geometry) == slot


class TestNNInvariants:
    @_settings
    @given(
        batch=st.integers(min_value=1, max_value=5),
        classes=st.integers(min_value=2, max_value=12),
    )
    def test_softmax_is_probability_distribution(self, batch, classes):
        rng = np.random.default_rng(batch * 100 + classes)
        logits = rng.normal(size=(batch, classes)) * 10
        probs = F.softmax(logits)
        assert np.all(probs >= 0)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-6)

    @_settings
    @given(
        batch=st.integers(min_value=1, max_value=4),
        channels=st.integers(min_value=1, max_value=3),
        size=st.integers(min_value=3, max_value=8),
        kernel=st.integers(min_value=1, max_value=3),
    )
    def test_im2col_shape_contract(self, batch, channels, size, kernel):
        rng = np.random.default_rng(0)
        x = rng.random((batch, channels, size, size)).astype(np.float32)
        cols, out_h, out_w = F.im2col(x, kernel, kernel, 1, 0)
        assert out_h == size - kernel + 1
        assert cols.shape == (batch * out_h * out_w, channels * kernel * kernel)

    @_settings
    @given(
        labels=st.lists(st.integers(min_value=0, max_value=9), min_size=1, max_size=40)
    )
    def test_one_hot_rows_sum_to_one(self, labels):
        encoded = to_one_hot(np.asarray(labels), 10)
        np.testing.assert_array_equal(encoded.sum(axis=1), 1.0)
        assert np.array_equal(np.argmax(encoded, axis=1), np.asarray(labels))
