"""Array-core equivalence and batched-API tests.

The vectorized struct-of-arrays core (:mod:`repro.photonics.bank_array`) must
reproduce the seed per-ring-object path (:mod:`repro.photonics.legacy`, built
on the scalar :class:`MicroringResonator` model) to 1e-9 on randomized
programs, actuation attacks and thermal shifts, for both encodings and a
range of bank sizes.  The object classes in :mod:`repro.photonics.mr_bank`
are thin views over the array-core, so they are exercised here too.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.photonics import BankArray, BankArrayPair, MRBank, MRBankPair, WDMGrid
from repro.photonics.legacy import ObjectMRBank, ObjectMRBankPair
from repro.photonics.thermal_sensitivity import ThermalSensitivity
from repro.utils.validation import ValidationError

TOL = 1e-9

_settings = settings(max_examples=40, deadline=None)


def _random_values(rng: np.random.Generator, size: int) -> np.ndarray:
    """Random normalized values including the encoding edge cases 0 and 1."""
    values = rng.random(size)
    values[rng.random(size) < 0.1] = 0.0
    values[rng.random(size) < 0.1] = 1.0
    return values


class TestBankEquivalence:
    """BankArray vs the seed object path, to 1e-9."""

    @pytest.mark.parametrize("encoding", ["through", "drop"])
    @pytest.mark.parametrize("size", [1, 3, 8, 17, 32])
    def test_randomized_programs(self, encoding, size):
        rng = np.random.default_rng(size * 1000 + (encoding == "drop"))
        grid = WDMGrid(num_channels=size)
        for _ in range(5):
            values = _random_values(rng, size)
            obj = ObjectMRBank(grid, encoding=encoding)
            arr = BankArray(grid, banks=1, encoding=encoding)
            obj.imprint(values)
            arr.imprint(values)
            np.testing.assert_allclose(
                arr.transmission_cube()[0], obj.transmission_matrix(), atol=TOL, rtol=0
            )
            np.testing.assert_allclose(
                arr.effective_values()[0], obj.effective_values(), atol=TOL, rtol=0
            )

    @pytest.mark.parametrize("encoding", ["through", "drop"])
    @pytest.mark.parametrize("size", [4, 8, 19])
    def test_actuation_attacks(self, encoding, size):
        rng = np.random.default_rng(size)
        grid = WDMGrid(num_channels=size)
        values = _random_values(rng, size)
        attacked = rng.choice(size, size=max(1, size // 3), replace=False)
        obj = ObjectMRBank(grid, encoding=encoding)
        arr = BankArray(grid, banks=1, encoding=encoding)
        obj.imprint(values)
        arr.imprint(values)
        obj.apply_actuation_attack(attacked)
        arr.apply_actuation_attack(attacked)
        np.testing.assert_allclose(
            arr.effective_values()[0], obj.effective_values(), atol=TOL, rtol=0
        )
        obj.clear_attacks()
        arr.clear_attacks()
        np.testing.assert_allclose(
            arr.effective_values()[0], obj.effective_values(), atol=TOL, rtol=0
        )

    @pytest.mark.parametrize("encoding", ["through", "drop"])
    @pytest.mark.parametrize("delta_t", [0.5, 7.0, 26.0, 80.0])
    def test_thermal_shifts(self, encoding, delta_t):
        size = 9
        rng = np.random.default_rng(int(delta_t * 10))
        grid = WDMGrid(num_channels=size)
        values = _random_values(rng, size)
        obj = ObjectMRBank(grid, encoding=encoding)
        arr = BankArray(grid, banks=1, encoding=encoding)
        obj.imprint(values)
        arr.imprint(values)
        obj.apply_thermal_attack(delta_t)
        arr.apply_thermal_attack(delta_t)
        np.testing.assert_allclose(
            arr.effective_values()[0], obj.effective_values(), atol=TOL, rtol=0
        )

    def test_per_ring_thermal_profile(self):
        size = 7
        rng = np.random.default_rng(7)
        grid = WDMGrid(num_channels=size)
        values = _random_values(rng, size)
        profile = rng.uniform(0.0, 30.0, size)
        obj = ObjectMRBank(grid, encoding="drop")
        arr = BankArray(grid, banks=1, encoding="drop")
        obj.imprint(values)
        arr.imprint(values)
        obj.apply_thermal_attack(profile)
        arr.apply_thermal_attack(profile)
        np.testing.assert_allclose(
            arr.effective_values()[0], obj.effective_values(), atol=TOL, rtol=0
        )

    @_settings
    @given(
        size=st.integers(min_value=1, max_value=24),
        seed=st.integers(min_value=0, max_value=2**31),
        delta_t=st.floats(min_value=0.0, max_value=60.0),
    )
    def test_pair_dot_products_property(self, size, seed, delta_t):
        """Randomized programs + attacks: pair dot products agree to 1e-9."""
        rng = np.random.default_rng(seed)
        grid = WDMGrid(num_channels=size)
        inputs = _random_values(rng, size)
        weights = _random_values(rng, size)
        attacked = rng.choice(size, size=rng.integers(0, size + 1), replace=False)
        obj = ObjectMRBankPair(size, grid=grid)
        arr = BankArrayPair(size, banks=1, grid=grid)
        obj.program(inputs, weights)
        arr.program(inputs, weights)
        if attacked.size:
            obj.weight_bank.apply_actuation_attack(attacked)
            arr.weight_bank.apply_actuation_attack(attacked)
        if delta_t > 0:
            obj.weight_bank.apply_thermal_attack(delta_t)
            arr.weight_bank.apply_thermal_attack(delta_t)
        assert arr.dot_products()[0] == pytest.approx(obj.dot_product(), abs=TOL)

    def test_view_classes_match_object_path(self):
        """MRBank/MRBankPair (array-backed views) match the seed classes."""
        size = 12
        rng = np.random.default_rng(3)
        grid = WDMGrid(num_channels=size)
        inputs = _random_values(rng, size)
        weights = _random_values(rng, size)
        view = MRBankPair(size, grid=grid)
        obj = ObjectMRBankPair(size, grid=grid)
        view.program(inputs, weights)
        obj.program(inputs, weights)
        assert view.dot_product() == pytest.approx(obj.dot_product(), abs=TOL)
        view.weight_bank.apply_actuation_attack([0, 5])
        obj.weight_bank.apply_actuation_attack([0, 5])
        view.weight_bank.apply_thermal_attack(11.0)
        obj.weight_bank.apply_thermal_attack(11.0)
        np.testing.assert_allclose(
            view.weight_bank.effective_values(),
            obj.weight_bank.effective_values(),
            atol=TOL,
            rtol=0,
        )


class TestBatchedBanks:
    """The (banks, rings) and (trials, banks, rings) axes of the array-core."""

    def test_multi_bank_rows_are_independent(self):
        size, banks = 6, 4
        rng = np.random.default_rng(0)
        grid = WDMGrid(num_channels=size)
        weights = rng.random((banks, size))
        inputs = rng.random((banks, size))
        pair = BankArrayPair(size, banks=banks, grid=grid)
        pair.program(inputs, weights)
        outputs = pair.dot_products()
        for row in range(banks):
            single = ObjectMRBankPair(size, grid=grid)
            single.program(inputs[row], weights[row])
            assert outputs[row] == pytest.approx(single.dot_product(), abs=TOL)

    def test_matvec_matches_row_by_row_object_path(self):
        size = 10
        rng = np.random.default_rng(1)
        grid = WDMGrid(num_channels=size)
        matrix = rng.random((size, size))
        vector = rng.random(size)
        attacked_rows = {2: [0, 3], 7: [9]}
        row_delta_t = {4: 18.0, 7: 9.0}
        pair = BankArrayPair(size, banks=size, grid=grid)
        outputs = pair.matvec(
            matrix, vector, attacked_rows=attacked_rows, row_delta_t_k=row_delta_t
        )
        sensitivity = ThermalSensitivity()
        for row in range(size):
            single = ObjectMRBankPair(size, grid=grid)
            single.program(vector, matrix[row])
            if row in attacked_rows:
                single.weight_bank.apply_actuation_attack(attacked_rows[row])
            if row in row_delta_t:
                single.weight_bank.apply_thermal_attack(row_delta_t[row], sensitivity)
            assert outputs[row] == pytest.approx(single.dot_product(), abs=TOL)

    def test_monte_carlo_thermal_matches_serial_attacks(self):
        size, trials = 8, 32
        rng = np.random.default_rng(2)
        grid = WDMGrid(num_channels=size)
        inputs, weights = rng.random(size), rng.random(size)
        deltas = rng.uniform(0.0, 40.0, trials)
        pair = BankArrayPair(size, banks=1, grid=grid)
        pair.program(inputs, weights)
        batched = pair.monte_carlo(delta_t_k=deltas.reshape(-1, 1, 1))
        assert batched.shape == (trials, 1)
        reference = ObjectMRBankPair(size, grid=grid)
        reference.program(inputs, weights)
        for trial in range(trials):
            reference.clear_attacks()
            if deltas[trial] > 0:
                reference.weight_bank.apply_thermal_attack(deltas[trial])
            assert batched[trial, 0] == pytest.approx(reference.dot_product(), abs=TOL)

    def test_monte_carlo_actuation_masks(self):
        size, trials = 6, 12
        rng = np.random.default_rng(3)
        grid = WDMGrid(num_channels=size)
        inputs, weights = rng.random(size), rng.random(size)
        masks = rng.random((trials, 1, size)) < 0.3
        pair = BankArrayPair(size, banks=1, grid=grid)
        pair.program(inputs, weights)
        batched = pair.monte_carlo(actuation_masks=masks)
        reference = ObjectMRBankPair(size, grid=grid)
        reference.program(inputs, weights)
        for trial in range(trials):
            reference.clear_attacks()
            indices = np.flatnonzero(masks[trial, 0])
            if indices.size:
                reference.weight_bank.apply_actuation_attack(indices)
            assert batched[trial, 0] == pytest.approx(reference.dot_product(), abs=TOL)

    def test_monte_carlo_thermal_overrides_actuation(self):
        """Per-trial precedence matches sequential attack application."""
        size = 5
        rng = np.random.default_rng(4)
        grid = WDMGrid(num_channels=size)
        inputs, weights = rng.random(size), rng.random(size)
        pair = BankArrayPair(size, banks=1, grid=grid)
        pair.program(inputs, weights)
        masks = np.zeros((1, 1, size), dtype=bool)
        masks[0, 0, [1, 3]] = True
        batched = pair.monte_carlo(
            delta_t_k=np.array([22.0]), actuation_masks=masks
        )
        reference = ObjectMRBankPair(size, grid=grid)
        reference.program(inputs, weights)
        reference.weight_bank.apply_actuation_attack([1, 3])
        reference.weight_bank.apply_thermal_attack(22.0)
        assert batched[0, 0] == pytest.approx(reference.dot_product(), abs=TOL)

    def test_monte_carlo_chunking_is_transparent(self):
        size, trials = 4, 64
        rng = np.random.default_rng(5)
        pair = BankArrayPair(size)
        pair.program(rng.random(size), rng.random(size))
        deltas = rng.uniform(0.0, 30.0, trials)
        full = pair.monte_carlo(delta_t_k=deltas)
        chunked = pair.monte_carlo(delta_t_k=deltas, max_chunk_elements=size * size * 3)
        np.testing.assert_array_equal(full, chunked)

    def test_monte_carlo_requires_an_attack_axis(self):
        pair = BankArrayPair(4)
        pair.program(np.full(4, 0.5), np.full(4, 0.5))
        with pytest.raises(ValidationError):
            pair.monte_carlo()

    def test_monte_carlo_two_dim_deltas_are_per_bank(self):
        """(trials, banks) heats whole banks; per-ring profiles need 3 dims."""
        size, banks = 4, 3
        rng = np.random.default_rng(6)
        grid = WDMGrid(num_channels=size)
        pair = BankArrayPair(size, banks=banks, grid=grid)
        inputs, weights = rng.random((banks, size)), rng.random((banks, size))
        pair.program(inputs, weights)
        deltas = np.array([[0.0, 25.0, 0.0]])  # trial 0: only bank 1 heated
        batched = pair.monte_carlo(delta_t_k=deltas)
        for bank in range(banks):
            reference = ObjectMRBankPair(size, grid=grid)
            reference.program(inputs[bank], weights[bank])
            if deltas[0, bank] > 0:
                reference.weight_bank.apply_thermal_attack(deltas[0, bank])
            assert batched[0, bank] == pytest.approx(reference.dot_product(), abs=TOL)

    def test_monte_carlo_rejects_non_broadcastable_axes(self):
        pair = BankArrayPair(4, banks=3)
        pair.program(np.full((3, 4), 0.5), np.full((3, 4), 0.5))
        with pytest.raises(ValidationError, match="banks, rings"):
            pair.monte_carlo(delta_t_k=np.zeros((5, 4)))  # 4 != banks(3)
        with pytest.raises(ValidationError, match="at most 3 dims"):
            pair.monte_carlo(delta_t_k=np.zeros((5, 1, 3, 4)))


class TestImprintValidation:
    def test_nan_rejected_before_programming(self):
        """Regression: NaN slips through plain range checks (NaN < 0 is False)."""
        bank = MRBank(WDMGrid(num_channels=3))
        values = np.array([0.2, np.nan, 0.4])
        with pytest.raises(ValidationError, match="finite"):
            bank.imprint(values)
        # Nothing was programmed: the bank state is untouched.
        np.testing.assert_array_equal(bank.imprinted_values(), np.zeros(3))

    def test_inf_rejected(self):
        bank = MRBank(WDMGrid(num_channels=2), encoding="drop")
        with pytest.raises(ValidationError, match="finite"):
            bank.imprint(np.array([0.1, np.inf]))

    def test_bank_array_rejects_nan(self):
        array = BankArray(WDMGrid(num_channels=4), banks=2)
        values = np.full((2, 4), 0.5)
        values[1, 2] = np.nan
        with pytest.raises(ValidationError, match="finite"):
            array.imprint(values)

    def test_legacy_bank_rejects_nan(self):
        bank = ObjectMRBank(WDMGrid(num_channels=3))
        with pytest.raises(ValidationError, match="finite"):
            bank.imprint(np.array([0.2, np.nan, 0.4]))

    def test_range_validation_preserved(self):
        array = BankArray(WDMGrid(num_channels=3))
        with pytest.raises(ValidationError):
            array.imprint(np.array([0.1, 0.2, 1.5]))
        with pytest.raises(ValidationError):
            array.imprint(np.array([-0.1, 0.2, 0.5]))


class TestRingViews:
    def test_views_read_and_write_array_state(self):
        bank = MRBank(WDMGrid(num_channels=4))
        bank.imprint(np.array([0.1, 0.4, 0.6, 0.9]))
        rings = bank.mrs
        assert [r.imprinted_value for r in rings] == pytest.approx([0.1, 0.4, 0.6, 0.9])
        rings[2].apply_actuation_attack()
        assert bank.array.attack_detuning_nm[0, 2] > 0
        assert bank.effective_values()[2] > 0.9  # carrier passes unattenuated
        rings[2].clear_attack()
        assert bank.array.attack_detuning_nm[0, 2] == 0.0

    def test_view_transmission_matches_bank_row(self):
        grid = WDMGrid(num_channels=5)
        bank = MRBank(grid, encoding="drop")
        bank.imprint(np.linspace(0.1, 0.9, 5))
        matrix = bank.transmission_matrix()
        for index, ring in enumerate(bank.mrs):
            np.testing.assert_allclose(
                ring.through_transmission(grid.wavelengths_nm),
                matrix[index],
                atol=TOL,
                rtol=0,
            )
