"""Tests for the synthetic datasets, splits, loaders and transforms."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    DataLoader,
    Dataset,
    Normalize,
    OneHot,
    RandomHorizontalFlip,
    RandomTranslate,
    Compose,
    load_dataset,
    make_cifar10_like,
    make_imagenette_like,
    make_mnist_like,
    to_one_hot,
    train_test_split,
)
from repro.utils.validation import ValidationError


class TestDatasetContainer:
    def test_rejects_wrong_image_rank(self):
        with pytest.raises(ValidationError):
            Dataset(images=np.zeros((4, 8, 8)), labels=np.zeros(4, dtype=int), num_classes=2)

    def test_rejects_mismatched_lengths(self):
        with pytest.raises(ValidationError):
            Dataset(images=np.zeros((4, 1, 8, 8)), labels=np.zeros(3, dtype=int), num_classes=2)

    def test_rejects_out_of_range_labels(self):
        with pytest.raises(ValidationError):
            Dataset(images=np.zeros((2, 1, 4, 4)), labels=np.array([0, 5]), num_classes=2)

    def test_subset_and_class_counts(self):
        data = Dataset(
            images=np.zeros((6, 1, 4, 4), dtype=np.float32),
            labels=np.array([0, 1, 0, 1, 0, 1]),
            num_classes=2,
        )
        subset = data.subset(np.array([0, 1, 2]))
        assert len(subset) == 3
        assert subset.image_shape == (1, 4, 4)
        np.testing.assert_array_equal(data.class_counts(), [3, 3])

    def test_map_images_applies_function(self):
        data = Dataset(
            images=np.ones((2, 1, 2, 2), dtype=np.float32),
            labels=np.array([0, 1]),
            num_classes=2,
        )
        doubled = data.map_images(lambda x: x * 2)
        assert float(doubled.images.max()) == 2.0


class TestGenerators:
    @pytest.mark.parametrize(
        "factory, channels, size",
        [
            (make_mnist_like, 1, 28),
            (make_cifar10_like, 3, 32),
        ],
    )
    def test_shapes_and_ranges(self, factory, channels, size):
        data = factory(num_samples=50, seed=0)
        assert data.images.shape == (50, channels, size, size)
        assert data.images.dtype == np.float32
        assert data.images.min() >= 0.0 and data.images.max() <= 1.0
        assert data.num_classes == 10

    def test_imagenette_respects_image_size(self):
        data = make_imagenette_like(num_samples=20, image_size=48, seed=0)
        assert data.images.shape == (20, 3, 48, 48)

    def test_generation_is_deterministic(self):
        a = make_mnist_like(num_samples=30, seed=7)
        b = make_mnist_like(num_samples=30, seed=7)
        np.testing.assert_allclose(a.images, b.images)
        np.testing.assert_array_equal(a.labels, b.labels)

    def test_different_seeds_differ(self):
        a = make_mnist_like(num_samples=30, seed=1)
        b = make_mnist_like(num_samples=30, seed=2)
        assert not np.allclose(a.images, b.images)

    def test_all_classes_present(self):
        data = make_cifar10_like(num_samples=100, seed=0)
        assert set(np.unique(data.labels)) == set(range(10))

    def test_classes_are_distinguishable(self):
        """Per-class mean images should differ measurably between classes."""
        data = make_mnist_like(num_samples=200, seed=0, noise_std=0.02)
        means = [data.images[data.labels == c].mean(axis=0) for c in range(10)]
        distances = [
            np.abs(means[i] - means[j]).mean()
            for i in range(10)
            for j in range(i + 1, 10)
        ]
        assert min(distances) > 0.01

    def test_registry_load_dataset(self):
        data = load_dataset("mnist", num_samples=20, seed=0)
        assert data.name.startswith("synthetic-mnist")
        with pytest.raises(ValidationError):
            load_dataset("not-a-dataset")


class TestSplitAndLoader:
    def test_split_is_stratified_and_disjoint(self):
        data = make_mnist_like(num_samples=200, seed=0)
        split = train_test_split(data, test_fraction=0.2, seed=0)
        assert len(split.train) + len(split.test) == len(data)
        # Every class appears in the test partition.
        assert set(np.unique(split.test.labels)) == set(range(10))

    def test_split_rejects_bad_fraction(self):
        data = make_mnist_like(num_samples=20, seed=0)
        with pytest.raises(ValidationError):
            train_test_split(data, test_fraction=1.5)

    def test_loader_yields_all_samples_once(self):
        data = make_mnist_like(num_samples=53, seed=0)
        loader = DataLoader(data, batch_size=16, shuffle=True, seed=0)
        seen = sum(labels.shape[0] for _, labels in loader)
        assert seen == 53
        assert len(loader) == 4

    def test_loader_drop_last(self):
        data = make_mnist_like(num_samples=53, seed=0)
        loader = DataLoader(data, batch_size=16, shuffle=False, drop_last=True)
        assert len(loader) == 3
        assert sum(labels.shape[0] for _, labels in loader) == 48

    def test_loader_shuffles_between_epochs(self):
        data = make_mnist_like(num_samples=64, seed=0)
        loader = DataLoader(data, batch_size=64, shuffle=True, seed=0)
        first_epoch = next(iter(loader))[1]
        second_epoch = next(iter(loader))[1]
        assert not np.array_equal(first_epoch, second_epoch)

    def test_loader_applies_transform(self):
        data = make_mnist_like(num_samples=8, seed=0)
        loader = DataLoader(
            data, batch_size=4, shuffle=False, transform=lambda x, rng: x * 0.0
        )
        images, _ = next(iter(loader))
        assert float(np.abs(images).max()) == 0.0


class TestTransforms:
    def test_normalize(self):
        images = np.ones((2, 3, 4, 4), dtype=np.float32)
        out = Normalize(mean=[1.0, 1.0, 1.0], std=[0.5, 0.5, 0.5])(images)
        np.testing.assert_allclose(out, 0.0)

    def test_normalize_rejects_zero_std(self):
        with pytest.raises(ValidationError):
            Normalize(mean=0.0, std=0.0)

    def test_horizontal_flip_all(self, rng):
        images = np.zeros((3, 1, 2, 2), dtype=np.float32)
        images[:, :, :, 0] = 1.0
        flipped = RandomHorizontalFlip(p=1.0)(images, rng)
        assert np.all(flipped[:, :, :, 1] == 1.0)

    def test_translate_preserves_shape(self, rng):
        images = np.random.default_rng(0).random((4, 1, 8, 8)).astype(np.float32)
        out = RandomTranslate(max_shift=2)(images, rng)
        assert out.shape == images.shape

    def test_compose_order(self, rng):
        images = np.ones((1, 1, 2, 2), dtype=np.float32)
        pipeline = Compose([lambda x, r: x + 1, lambda x, r: x * 2])
        np.testing.assert_allclose(pipeline(images, rng), 4.0)

    def test_one_hot(self):
        encoded = to_one_hot(np.array([0, 2, 1]), 3)
        np.testing.assert_array_equal(encoded, np.eye(3, dtype=np.float32)[[0, 2, 1]])
        assert OneHot(3)(np.array([1])).shape == (1, 3)
        with pytest.raises(ValidationError):
            to_one_hot(np.array([3]), 3)
