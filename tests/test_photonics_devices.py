"""Tests for the device-level photonics models (MR, tuning, waveguide, PD, converters)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.photonics import (
    ADC,
    DAC,
    ElectroOpticTuner,
    LaserSource,
    MicroringResonator,
    MRState,
    OpticalNoiseModel,
    Photodetector,
    ThermalSensitivity,
    ThermoOpticTuner,
    WDMGrid,
    Waveguide,
    constants,
    resonance_shift,
)
from repro.photonics.tuning import combined_tuning_cost
from repro.utils.validation import ValidationError


class TestMicroring:
    def test_resonance_close_to_target_wavelength(self):
        ring = MicroringResonator(target_wavelength_nm=1550.0)
        # Eq. 1 with the nearest integer order lands within one FSR of target.
        assert abs(ring.natural_resonance_nm - 1550.0) < ring.fsr_nm

    def test_linewidth_and_fsr_positive(self):
        ring = MicroringResonator()
        assert ring.linewidth_nm > 0
        assert ring.fsr_nm > ring.linewidth_nm

    def test_through_transmission_dips_on_resonance(self):
        ring = MicroringResonator(extinction_ratio_db=30.0)
        on_res = ring.through_transmission(ring.current_resonance_nm)
        off_res = ring.through_transmission(ring.current_resonance_nm + 5 * ring.linewidth_nm)
        assert on_res < 0.01
        assert off_res > 0.9

    def test_drop_is_complement_of_through(self):
        ring = MicroringResonator()
        wl = ring.target_wavelength_nm + 0.05
        assert ring.drop_transmission(wl) == pytest.approx(1 - ring.through_transmission(wl))

    @pytest.mark.parametrize("value", [0.05, 0.25, 0.5, 0.75, 0.95])
    def test_imprint_through_value_is_recovered(self, value):
        ring = MicroringResonator()
        ring.imprint(value)
        assert ring.effective_value() == pytest.approx(value, abs=0.01)

    @pytest.mark.parametrize("value", [0.1, 0.5, 0.9])
    def test_imprint_drop_value_is_recovered(self, value):
        ring = MicroringResonator()
        ring.imprint_drop(value)
        assert ring.effective_drop_value() == pytest.approx(value, abs=0.01)

    def test_imprint_rejects_out_of_range(self):
        ring = MicroringResonator()
        with pytest.raises(ValidationError):
            ring.imprint(1.5)
        with pytest.raises(ValidationError):
            ring.imprint_drop(-0.1)

    def test_actuation_attack_forces_off_resonance(self):
        ring = MicroringResonator()
        ring.imprint_drop(0.8)
        ring.apply_actuation_attack()
        assert ring.state is MRState.OFF_RESONANCE
        assert ring.effective_drop_value() < 0.05
        ring.clear_attack()
        assert ring.state is MRState.NOMINAL
        assert ring.effective_drop_value() == pytest.approx(0.8, abs=0.01)

    def test_thermal_shift_moves_resonance(self):
        ring = MicroringResonator()
        before = ring.current_resonance_nm
        ring.apply_thermal_shift(0.8)
        assert ring.current_resonance_nm == pytest.approx(before + 0.8)
        assert ring.state is MRState.THERMALLY_SHIFTED


class TestThermalSensitivity:
    def test_eq2_linear_in_temperature(self):
        sens = ThermalSensitivity()
        one = sens.resonance_shift_nm(1550.0, 1.0)
        ten = sens.resonance_shift_nm(1550.0, 10.0)
        assert ten == pytest.approx(10 * one)

    def test_eq2_expected_magnitude(self):
        """For standard Si parameters the shift is ~0.05-0.06 nm/K at 1550nm."""
        shift = resonance_shift(1550.0, 1.0)
        assert 0.03 < shift < 0.08

    def test_temperature_for_shift_inverts(self):
        sens = ThermalSensitivity()
        delta_t = sens.temperature_for_shift(1550.0, 0.8)
        assert sens.resonance_shift_nm(1550.0, delta_t) == pytest.approx(0.8)

    def test_vector_input(self):
        shifts = resonance_shift(1550.0, np.array([1.0, 2.0]))
        assert shifts.shape == (2,)
        assert shifts[1] == pytest.approx(2 * shifts[0])


class TestTuningCircuits:
    def test_eo_cost_scales_with_shift(self):
        eo = ElectroOpticTuner()
        small = eo.cost_for_shift(0.1)
        large = eo.cost_for_shift(0.4)
        assert large.power_w > small.power_w
        assert small.latency_s == pytest.approx(constants.EO_TUNING_LATENCY_S)

    def test_eo_rejects_out_of_range(self):
        with pytest.raises(ValidationError):
            ElectroOpticTuner().cost_for_shift(5.0)

    def test_to_covers_large_range_but_costs_more(self):
        to = ThermoOpticTuner(fsr_nm=10.0)
        eo = ElectroOpticTuner()
        shift = 0.4
        assert to.cost_for_shift(shift).power_w > eo.cost_for_shift(shift).power_w
        assert to.cost_for_shift(shift).latency_s > eo.cost_for_shift(shift).latency_s

    def test_to_heater_power_for_temperature(self):
        to = ThermoOpticTuner()
        assert to.heater_power_for_temperature(15.0) > 0
        with pytest.raises(ValidationError):
            to.heater_power_for_temperature(-1.0)

    def test_combined_tuning_uses_eo_for_small_shifts(self):
        eo = ElectroOpticTuner()
        cost = combined_tuning_cost(0.2, eo=eo)
        assert cost.latency_s == pytest.approx(eo.latency_s)

    def test_combined_tuning_engages_to_for_large_shifts(self):
        cost = combined_tuning_cost(3.0)
        assert cost.latency_s == pytest.approx(constants.TO_TUNING_LATENCY_S)


class TestWaveguideAndLaser:
    def test_wdm_grid_spacing_and_centering(self):
        grid = WDMGrid(num_channels=5, spacing_nm=0.8)
        wavelengths = grid.wavelengths_nm
        assert len(wavelengths) == 5
        np.testing.assert_allclose(np.diff(wavelengths), 0.8)
        assert np.mean(wavelengths) == pytest.approx(grid.center_nm)

    def test_channel_of_handles_unsupported_wavelengths(self):
        grid = WDMGrid(num_channels=4, spacing_nm=0.8)
        wavelengths = grid.wavelengths_nm
        assert grid.channel_of(wavelengths[2] + 0.1) == 2
        assert grid.channel_of(wavelengths[-1] + 5.0) is None

    def test_shift_in_channels(self):
        grid = WDMGrid(num_channels=4, spacing_nm=0.8)
        assert grid.shift_in_channels(0.8) == 1
        assert grid.shift_in_channels(0.3) == 0
        assert grid.shift_in_channels(1.7) == 2

    def test_waveguide_loss(self):
        wg = Waveguide(length_mm=10.0, propagation_loss_db_per_cm=1.0, coupling_loss_db=1.0)
        assert wg.total_loss_db == pytest.approx(2.0)
        assert wg.propagate(1.0) == pytest.approx(10 ** -0.2)

    def test_laser_power_budget(self):
        grid = WDMGrid(num_channels=8)
        laser = LaserSource(grid, power_per_channel_mw=2.0, wall_plug_efficiency=0.25)
        assert laser.emit().shape == (8,)
        assert laser.electrical_power_w == pytest.approx(8 * 2e-3 / 0.25)


class TestDetectorsAndConverters:
    def test_ideal_detector_sums_powers(self):
        detector = Photodetector(responsivity_a_per_w=0.8, dark_current_a=0.0)
        current = detector.detect(np.array([1e-3, 2e-3, 3e-3]))
        assert current == pytest.approx(0.8 * 6e-3)

    def test_noisy_detector_varies(self):
        detector = Photodetector(enable_noise=True, seed=0, bandwidth_hz=1e12)
        samples = {detector.detect(np.array([1e-3])) for _ in range(5)}
        assert len(samples) > 1

    def test_detector_voltage_conversion(self):
        detector = Photodetector(load_resistance_ohm=100.0)
        assert detector.to_voltage(1e-3) == pytest.approx(0.1)

    def test_dac_quantization_levels(self):
        dac = DAC(bits=2, full_scale=1.0, bipolar=False)
        values = dac.convert(np.array([0.0, 0.2, 0.5, 1.0]))
        # 2 bits -> levels {0, 1/3, 2/3, 1}
        np.testing.assert_allclose(values, [0.0, 1 / 3, 2 / 3, 1.0], atol=1e-9)

    def test_adc_clips_to_full_scale(self):
        adc = ADC(bits=8, full_scale=1.0)
        assert adc.convert(2.0) == pytest.approx(1.0)
        assert adc.convert(-2.0) == pytest.approx(-1.0)

    def test_quantization_error_shrinks_with_bits(self, rng):
        values = rng.random(100)
        coarse = np.abs(DAC(bits=3).quantization_error(values)).max()
        fine = np.abs(DAC(bits=8).quantization_error(values)).max()
        assert fine < coarse

    def test_invalid_bits_rejected(self):
        with pytest.raises(ValidationError):
            DAC(bits=0)
        with pytest.raises(ValidationError):
            ADC(bits=64)


class TestOpticalNoise:
    def test_crosstalk_mixes_neighbours(self):
        model = OpticalNoiseModel(crosstalk_db=-10.0)
        powers = np.array([1.0, 0.0, 0.0])
        mixed = model.apply_crosstalk(powers)
        assert mixed[1] > 0 and mixed[2] == 0.0

    def test_insertion_loss_attenuates(self):
        model = OpticalNoiseModel(per_mr_insertion_loss_db=0.1)
        out = model.apply_insertion_loss(np.array([1.0]), num_mrs=10)
        assert out[0] == pytest.approx(10 ** -0.1)

    def test_intensity_noise_disabled_by_default(self):
        model = OpticalNoiseModel()
        powers = np.array([1.0, 2.0])
        np.testing.assert_array_equal(model.apply_intensity_noise(powers), powers)

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            OpticalNoiseModel(crosstalk_db=3.0)
        with pytest.raises(ValueError):
            OpticalNoiseModel(rin_std=-0.1)
