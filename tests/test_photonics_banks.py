"""Tests for MR banks, bank pairs and VDP units (signal-level computation)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.photonics import MRBank, MRBankPair, VDPUnit, WDMGrid
from repro.photonics.dac_adc import ADC, DAC
from repro.utils.validation import ValidationError


class TestMRBank:
    def test_bank_has_one_ring_per_channel(self):
        grid = WDMGrid(num_channels=6)
        bank = MRBank(grid)
        assert len(bank) == 6
        wavelengths = [ring.target_wavelength_nm for ring in bank.mrs]
        np.testing.assert_allclose(np.diff(wavelengths), grid.spacing_nm)

    def test_imprint_validates_length_and_range(self):
        bank = MRBank(WDMGrid(num_channels=3))
        with pytest.raises(ValidationError):
            bank.imprint(np.array([0.1, 0.2]))
        with pytest.raises(ValidationError):
            bank.imprint(np.array([0.1, 0.2, 1.5]))

    def test_through_bank_encodes_values(self):
        bank = MRBank(WDMGrid(num_channels=4), encoding="through")
        values = np.array([0.2, 0.5, 0.8, 0.95])
        bank.imprint(values)
        np.testing.assert_allclose(bank.effective_values(), values, atol=0.05)

    def test_drop_bank_encodes_values(self):
        bank = MRBank(WDMGrid(num_channels=4), encoding="drop")
        values = np.array([0.2, 0.5, 0.8, 0.1])
        bank.imprint(values)
        np.testing.assert_allclose(bank.effective_values(), values, atol=0.06)

    def test_invalid_encoding_rejected(self):
        with pytest.raises(ValidationError):
            MRBank(WDMGrid(num_channels=2), encoding="phase")

    def test_actuation_attack_zeroes_drop_value(self):
        bank = MRBank(WDMGrid(num_channels=4), encoding="drop")
        bank.imprint(np.array([0.9, 0.9, 0.9, 0.9]))
        bank.apply_actuation_attack([1])
        values = bank.effective_values()
        assert values[1] < 0.1
        assert values[0] > 0.8
        bank.clear_attacks()
        assert bank.effective_values()[1] > 0.8

    def test_thermal_attack_shifts_whole_bank(self):
        grid = WDMGrid(num_channels=5)
        bank = MRBank(grid, encoding="drop")
        pattern = np.array([0.9, 0.1, 0.7, 0.3, 0.5])
        bank.imprint(pattern)
        # Temperature rise large enough to shift by one full channel.
        from repro.photonics import ThermalSensitivity

        sens = ThermalSensitivity()
        delta_t = grid.spacing_nm / sens.shift_per_kelvin(grid.center_nm)
        bank.apply_thermal_attack(delta_t)
        shifted = bank.effective_values()
        # Carrier j now gets (approximately) the value programmed at j-1.
        np.testing.assert_allclose(shifted[1:], pattern[:-1], atol=0.12)
        assert shifted[0] < 0.15  # first carrier lost its ring


class TestMRBankPair:
    def test_dot_product_matches_reference(self, rng):
        pair = MRBankPair(6)
        a = rng.random(6)
        w = rng.random(6)
        pair.program(a, w)
        assert pair.dot_product() == pytest.approx(float(a @ w), abs=0.08)

    def test_grid_size_mismatch_rejected(self):
        with pytest.raises(ValidationError):
            MRBankPair(4, grid=WDMGrid(num_channels=5))

    def test_actuation_attack_reduces_dot_product(self, rng):
        pair = MRBankPair(5)
        a = np.full(5, 0.8)
        w = np.full(5, 0.8)
        pair.program(a, w)
        clean = pair.dot_product()
        pair.weight_bank.apply_actuation_attack([0, 1])
        attacked = pair.dot_product()
        assert attacked < clean - 0.5 * (0.8 * 0.8)

    def test_clear_attacks_restores(self, rng):
        pair = MRBankPair(4)
        a = rng.random(4)
        w = rng.random(4)
        pair.program(a, w)
        clean = pair.dot_product()
        pair.weight_bank.apply_actuation_attack([2])
        pair.clear_attacks()
        assert pair.dot_product() == pytest.approx(clean, abs=1e-6)


class TestVDPUnit:
    def test_capacity_and_mr_count(self):
        unit = VDPUnit(rows=3, cols=4)
        assert unit.max_vector_length == 12
        assert unit.num_mrs == 24

    def test_dot_of_long_vector_splits_across_banks(self, rng):
        unit = VDPUnit(rows=2, cols=4)
        a = rng.random(7)
        w = rng.random(7)
        assert unit.dot(a, w) == pytest.approx(float(a @ w), abs=0.12)

    def test_rejects_vectors_exceeding_capacity(self, rng):
        unit = VDPUnit(rows=1, cols=4)
        with pytest.raises(ValidationError):
            unit.dot(rng.random(5), rng.random(5))

    def test_rejects_mismatched_operands(self, rng):
        unit = VDPUnit(rows=1, cols=4)
        with pytest.raises(ValidationError):
            unit.dot(rng.random(3), rng.random(4))

    def test_converters_quantize_without_breaking_accuracy(self, rng):
        unit = VDPUnit(rows=1, cols=4, dac=DAC(bits=8, bipolar=False), adc=ADC(bits=10))
        a = rng.random(4)
        w = rng.random(4)
        assert unit.dot(a, w) == pytest.approx(float(a @ w), abs=0.1)

    def test_empty_operands_give_exact_zero(self):
        unit = VDPUnit(rows=2, cols=4)
        assert unit.dot(np.array([]), np.array([])) == 0.0

    def test_nan_operands_rejected(self):
        unit = VDPUnit(rows=1, cols=4)
        with pytest.raises(ValidationError):
            unit.dot(np.array([0.1, np.nan, 0.3, 0.4]), np.full(4, 0.5))
