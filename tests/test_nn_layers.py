"""Layer-level tests: forward shapes and numerical gradient checks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    AvgPool2D,
    BatchNorm2D,
    Conv2D,
    Dropout,
    Flatten,
    GaussianNoise,
    GlobalAvgPool2D,
    LeakyReLU,
    Linear,
    MaxPool2D,
    ReLU,
    Sequential,
    Sigmoid,
    Tanh,
)
from repro.nn.module import Module


def numerical_gradient_check(module: Module, x: np.ndarray, param=None, eps: float = 1e-3,
                             atol: float = 2e-3) -> None:
    """Compare analytic and numerical gradients of ``sum(forward(x))``.

    When ``param`` is given the check is on that parameter, otherwise on the
    input gradient returned by ``backward``.
    """
    module.train()

    def loss() -> float:
        return float(module(x).sum())

    base_out = module(x)
    grad_in = module.backward(np.ones_like(base_out))

    if param is None:
        flat_index = tuple(np.unravel_index(np.argmax(np.abs(x)), x.shape))
        perturbed = x.copy()
        perturbed[flat_index] += eps
        plus = float(module(perturbed).sum())
        perturbed[flat_index] -= 2 * eps
        minus = float(module(perturbed).sum())
        numeric = (plus - minus) / (2 * eps)
        assert abs(numeric - grad_in[flat_index]) < atol
    else:
        flat_index = tuple(np.unravel_index(np.argmax(np.abs(param.data)), param.data.shape))
        original = param.data[flat_index]
        param.data[flat_index] = original + eps
        plus = loss()
        param.data[flat_index] = original - eps
        minus = loss()
        param.data[flat_index] = original
        numeric = (plus - minus) / (2 * eps)
        assert abs(numeric - param.grad[flat_index]) < atol


class TestLinear:
    def test_forward_shape_and_bias(self):
        layer = Linear(4, 3, rng=0)
        out = layer(np.ones((2, 4), dtype=np.float32))
        assert out.shape == (2, 3)

    def test_rejects_wrong_input_shape(self):
        layer = Linear(4, 3, rng=0)
        with pytest.raises(ValueError):
            layer(np.ones((2, 5), dtype=np.float32))

    def test_weight_gradient_matches_numerical(self, rng):
        layer = Linear(5, 3, rng=1)
        x = rng.normal(size=(4, 5)).astype(np.float32)
        numerical_gradient_check(layer, x, param=layer.weight)

    def test_input_gradient_matches_numerical(self, rng):
        layer = Linear(5, 3, rng=1)
        x = rng.normal(size=(4, 5)).astype(np.float32)
        numerical_gradient_check(layer, x)

    def test_parameter_kinds(self):
        layer = Linear(2, 2, rng=0)
        assert layer.weight.kind == "fc"
        assert layer.bias.kind == "bias"

    def test_no_bias_option(self):
        layer = Linear(2, 2, bias=False, rng=0)
        assert layer.bias is None
        assert len(layer.parameters()) == 1


class TestConv2D:
    def test_output_shape_with_padding_and_stride(self):
        layer = Conv2D(3, 8, kernel_size=3, stride=2, padding=1, rng=0)
        out = layer(np.zeros((2, 3, 8, 8), dtype=np.float32))
        assert out.shape == (2, 8, 4, 4)
        assert layer.output_shape((8, 8)) == (8, 4, 4)

    def test_matches_direct_convolution(self, rng):
        layer = Conv2D(1, 1, kernel_size=2, stride=1, padding=0, bias=False, rng=0)
        layer.weight.data = np.arange(4, dtype=np.float32).reshape(1, 1, 2, 2)
        x = np.arange(9, dtype=np.float32).reshape(1, 1, 3, 3)
        out = layer(x)
        expected = np.zeros((2, 2))
        for i in range(2):
            for j in range(2):
                expected[i, j] = float((x[0, 0, i : i + 2, j : j + 2] * layer.weight.data[0, 0]).sum())
        np.testing.assert_allclose(out[0, 0], expected, rtol=1e-5)

    def test_weight_gradient_matches_numerical(self, rng):
        layer = Conv2D(2, 3, kernel_size=3, padding=1, rng=2)
        x = rng.normal(size=(2, 2, 5, 5)).astype(np.float32)
        numerical_gradient_check(layer, x, param=layer.weight, atol=5e-3)

    def test_input_gradient_matches_numerical(self, rng):
        layer = Conv2D(2, 3, kernel_size=3, padding=1, rng=2)
        x = rng.normal(size=(2, 2, 5, 5)).astype(np.float32)
        numerical_gradient_check(layer, x, atol=5e-3)

    def test_kernel_kind_is_conv(self):
        assert Conv2D(1, 1, rng=0).weight.kind == "conv"

    def test_rejects_wrong_channel_count(self):
        layer = Conv2D(3, 4, rng=0)
        with pytest.raises(ValueError):
            layer(np.zeros((1, 2, 6, 6), dtype=np.float32))


class TestPooling:
    def test_maxpool_selects_maximum(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        out = MaxPool2D(2)(x)
        np.testing.assert_array_equal(out[0, 0], [[5, 7], [13, 15]])

    def test_maxpool_backward_routes_to_argmax(self):
        x = np.arange(16, dtype=np.float32).reshape(1, 1, 4, 4)
        layer = MaxPool2D(2)
        layer(x)
        grad = layer.backward(np.ones((1, 1, 2, 2), dtype=np.float32))
        assert grad[0, 0, 1, 1] == 1.0 and grad[0, 0, 0, 0] == 0.0
        assert float(grad.sum()) == 4.0

    def test_avgpool_value_and_backward(self):
        x = np.ones((1, 2, 4, 4), dtype=np.float32)
        layer = AvgPool2D(2)
        out = layer(x)
        np.testing.assert_allclose(out, 1.0)
        grad = layer.backward(np.ones_like(out))
        np.testing.assert_allclose(grad, 0.25)

    def test_global_avg_pool(self):
        x = np.arange(8, dtype=np.float32).reshape(1, 2, 2, 2)
        layer = GlobalAvgPool2D()
        out = layer(x)
        np.testing.assert_allclose(out, [[1.5, 5.5]])
        grad = layer.backward(np.ones((1, 2), dtype=np.float32))
        np.testing.assert_allclose(grad, 0.25)


class TestActivations:
    @pytest.mark.parametrize("layer_cls", [ReLU, LeakyReLU, Sigmoid, Tanh])
    def test_gradient_matches_numerical(self, layer_cls, rng):
        layer = layer_cls()
        x = rng.normal(size=(3, 4)).astype(np.float32) + 0.1
        numerical_gradient_check(layer, x)

    def test_relu_zeroes_negatives(self):
        out = ReLU()(np.array([[-1.0, 2.0]], dtype=np.float32))
        np.testing.assert_array_equal(out, [[0.0, 2.0]])

    def test_leaky_relu_negative_slope(self):
        out = LeakyReLU(alpha=0.1)(np.array([[-2.0]], dtype=np.float32))
        np.testing.assert_allclose(out, [[-0.2]], rtol=1e-6)

    def test_sigmoid_range(self, rng):
        out = Sigmoid()(rng.normal(size=(10,)).astype(np.float32) * 50)
        assert np.all(out >= 0) and np.all(out <= 1)


class TestBatchNorm:
    def test_training_normalizes_batch(self, rng):
        layer = BatchNorm2D(3)
        x = rng.normal(2.0, 3.0, size=(8, 3, 4, 4)).astype(np.float32)
        out = layer(x)
        assert abs(float(out.mean())) < 1e-4
        assert abs(float(out.std()) - 1.0) < 1e-2

    def test_running_stats_used_in_eval(self, rng):
        layer = BatchNorm2D(2)
        x = rng.normal(1.0, 2.0, size=(16, 2, 4, 4)).astype(np.float32)
        for _ in range(30):
            layer(x)
        layer.eval()
        out = layer(x)
        assert abs(float(out.mean())) < 0.2

    def test_gamma_gradient_matches_numerical(self, rng):
        layer = BatchNorm2D(2)
        x = rng.normal(size=(4, 2, 3, 3)).astype(np.float32)
        numerical_gradient_check(layer, x, param=layer.gamma, atol=5e-3)

    def test_input_gradient_matches_numerical(self, rng):
        layer = BatchNorm2D(2)
        x = rng.normal(size=(4, 2, 3, 3)).astype(np.float32)
        numerical_gradient_check(layer, x, atol=5e-3)

    def test_rejects_wrong_channels(self):
        layer = BatchNorm2D(3)
        with pytest.raises(ValueError):
            layer(np.zeros((1, 2, 4, 4), dtype=np.float32))


class TestDropoutNoiseFlatten:
    def test_dropout_identity_in_eval(self, rng):
        layer = Dropout(0.5, rng=0)
        layer.eval()
        x = rng.random((4, 10)).astype(np.float32)
        np.testing.assert_array_equal(layer(x), x)

    def test_dropout_scales_survivors(self):
        layer = Dropout(0.5, rng=0)
        x = np.ones((2000,), dtype=np.float32)
        out = layer(x)
        survivors = out[out > 0]
        np.testing.assert_allclose(survivors, 2.0)
        assert abs(out.mean() - 1.0) < 0.1

    def test_dropout_backward_uses_same_mask(self):
        layer = Dropout(0.5, rng=0)
        x = np.ones((100,), dtype=np.float32)
        out = layer(x)
        grad = layer.backward(np.ones_like(x))
        np.testing.assert_array_equal(grad == 0, out == 0)

    def test_gaussian_noise_only_in_training(self, rng):
        layer = GaussianNoise(std=0.5, rng=0)
        x = rng.random((8, 8)).astype(np.float32)
        noisy = layer(x)
        assert not np.allclose(noisy, x)
        layer.eval()
        np.testing.assert_array_equal(layer(x), x)

    def test_gaussian_noise_zero_std_is_identity(self, rng):
        layer = GaussianNoise(std=0.0)
        x = rng.random((4, 4)).astype(np.float32)
        np.testing.assert_array_equal(layer(x), x)

    def test_flatten_roundtrip(self, rng):
        layer = Flatten()
        x = rng.random((2, 3, 4, 5)).astype(np.float32)
        out = layer(x)
        assert out.shape == (2, 60)
        grad = layer.backward(out)
        assert grad.shape == x.shape


class TestSequential:
    def test_forward_and_backward_chain(self, rng):
        model = Sequential(Linear(4, 8, rng=0), ReLU(), Linear(8, 2, rng=1))
        x = rng.normal(size=(3, 4)).astype(np.float32)
        out = model(x)
        assert out.shape == (3, 2)
        grad = model.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_indexing_and_append(self):
        model = Sequential(ReLU())
        model.append(Tanh())
        assert len(model) == 2
        assert isinstance(model[1], Tanh)
        assert [type(m).__name__ for m in model] == ["ReLU", "Tanh"]
