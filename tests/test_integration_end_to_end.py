"""End-to-end integration tests spanning training, mapping, attacks and mitigation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator import AcceleratorConfig, AttackedInferenceEngine, ONNAccelerator
from repro.attacks import ActuationAttack, AttackSpec, HotspotAttack
from repro.datasets import load_dataset, train_test_split
from repro.mitigation import L2Config, NoiseAwareConfig, VariantSpec, train_variant
from repro.nn import TrainingConfig
from repro.nn.models import build_model


class TestEndToEndPipeline:
    """The full SafeLight flow on the MNIST workload (scaled)."""

    @pytest.fixture(scope="class")
    def pipeline(self, ):
        dataset = load_dataset("mnist", num_samples=500, seed=11)
        split = train_test_split(dataset, 0.25, seed=12)
        config = AcceleratorConfig.scaled_config()
        original = train_variant(
            "cnn_mnist",
            VariantSpec(name="Original"),
            split,
            TrainingConfig(epochs=4, batch_size=32, lr=2e-3, seed=11),
        )
        # Noise-aware variants need a couple more epochs to converge at this
        # dataset size (the noise slows early training down).
        robust = train_variant(
            "cnn_mnist",
            VariantSpec(name="l2+n2", l2=L2Config(), noise=NoiseAwareConfig(std=0.2)),
            split,
            TrainingConfig(epochs=6, batch_size=32, lr=2e-3, seed=11),
        )
        return split, config, original, robust

    def test_baseline_models_learn_the_task(self, pipeline):
        _, _, original, robust = pipeline
        assert original.baseline_accuracy > 0.8
        assert robust.baseline_accuracy > 0.8

    def test_attacks_degrade_and_mitigation_recovers(self, pipeline):
        split, config, original, robust = pipeline
        original_engine = AttackedInferenceEngine(original.model, config)
        robust_engine = AttackedInferenceEngine(robust.model, config)
        clean = original_engine.clean_accuracy(split.test)

        # Actuation attacks: the robust variant should win back accuracy.
        actuation_spec = AttackSpec("actuation", "both", 0.10)
        original_actuation = []
        robust_actuation = []
        for seed in range(3):
            outcome = ActuationAttack(actuation_spec).sample(config, seed=seed)
            original_actuation.append(
                original_engine.accuracy_under_attack(split.test, outcome)
            )
            robust_actuation.append(robust_engine.accuracy_under_attack(split.test, outcome))
        assert np.mean(original_actuation) < clean - 0.03
        assert np.mean(robust_actuation) >= np.mean(original_actuation) - 0.02

        # Hotspot attacks at 10% are the hardest case (the paper also reports
        # limited recovery there): the robust variant must at least not be
        # substantially worse than the original.
        hotspot_spec = AttackSpec("hotspot", "both", 0.10)
        original_hotspot = []
        robust_hotspot = []
        for seed in range(3):
            outcome = HotspotAttack(hotspot_spec).sample(config, seed=seed)
            original_hotspot.append(
                original_engine.accuracy_under_attack(split.test, outcome)
            )
            robust_hotspot.append(robust_engine.accuracy_under_attack(split.test, outcome))
        assert np.mean(original_hotspot) < clean - 0.05
        assert np.mean(robust_hotspot) > np.mean(original_hotspot) - 0.10

    def test_actuation_weaker_than_hotspot_on_average(self, pipeline):
        split, config, original, _ = pipeline
        engine = AttackedInferenceEngine(original.model, config)
        actuation = np.mean(
            [
                engine.accuracy_under_attack(
                    split.test,
                    ActuationAttack(AttackSpec("actuation", "both", 0.10)).sample(config, seed=s),
                )
                for s in range(3)
            ]
        )
        hotspot = np.mean(
            [
                engine.accuracy_under_attack(
                    split.test,
                    HotspotAttack(AttackSpec("hotspot", "both", 0.10)).sample(config, seed=s),
                )
                for s in range(3)
            ]
        )
        assert hotspot <= actuation + 0.05

    def test_deployment_report_reflects_multi_round_mapping(self, pipeline):
        _, config, original, _ = pipeline
        report = ONNAccelerator(config).deployment_report(original.model)
        # The MNIST model's FC weights exceed the scaled FC block capacity,
        # which is the paper's "multiple mappings" situation.
        assert report.fc_rounds >= 2
        assert report.conv_rounds >= 1


class TestCrossModelSusceptibilityOrdering:
    """The larger conv-dominated models should be hurt at least as much as CNN_1."""

    def test_resnet_more_susceptible_than_mnist_model(self):
        config = AcceleratorConfig.scaled_config()
        results = {}
        for model_name, dataset_name, samples in (
            ("cnn_mnist", "mnist", 400),
            ("resnet18", "cifar10", 300),
        ):
            dataset = load_dataset(dataset_name, num_samples=samples, seed=5)
            split = train_test_split(dataset, 0.25, seed=6)
            model = build_model(model_name, profile="scaled", rng=5)
            epochs = 4 if model_name == "cnn_mnist" else 3
            from repro.nn import Trainer

            Trainer(model, TrainingConfig(epochs=epochs, batch_size=32, lr=2e-3, seed=5)).fit(
                split.train
            )
            engine = AttackedInferenceEngine(model, config)
            clean = engine.clean_accuracy(split.test)
            attacked = np.mean(
                [
                    engine.accuracy_under_attack(
                        split.test,
                        HotspotAttack(AttackSpec("hotspot", "conv", 0.10)).sample(
                            config, seed=seed
                        ),
                    )
                    for seed in range(3)
                ]
            )
            results[model_name] = (clean, clean - attacked)
        # Both models should not *gain* accuracy from the attack (allowing for
        # small-sample noise), and the conv-heavy ResNet should lose at least
        # as much from a CONV-block attack relative to its baseline.
        mnist_clean, mnist_drop = results["cnn_mnist"]
        resnet_clean, resnet_drop = results["resnet18"]
        assert mnist_drop >= -0.05
        assert resnet_drop >= -0.05
        assert resnet_drop / max(resnet_clean, 1e-6) >= mnist_drop / max(mnist_clean, 1e-6) - 0.10
