"""Tests for Module/Parameter plumbing, functional ops, losses and optimizers."""

from __future__ import annotations

import numpy as np
import pytest

from repro.nn import (
    Adam,
    Conv2D,
    CrossEntropyLoss,
    Flatten,
    Linear,
    ReLU,
    SGD,
    Sequential,
    l2_penalty,
)
from repro.nn import functional as F
from repro.nn.init import he_normal, he_uniform, ones, xavier_normal, xavier_uniform, zeros
from repro.nn.tensor import Parameter


class TestParameterAndModule:
    def test_parameter_copy_is_deep(self):
        param = Parameter(np.ones(3), name="w", kind="fc")
        clone = param.copy()
        clone.data[0] = 5.0
        assert param.data[0] == 1.0
        assert clone.name == "w" and clone.kind == "fc"

    def test_named_parameters_and_state_dict_roundtrip(self):
        model = Sequential(Conv2D(1, 2, 3, rng=0), ReLU(), Flatten(), Linear(2 * 4 * 4, 3, rng=1))
        names = [name for name, _ in model.named_parameters()]
        assert len(names) == len(set(names)) == 4
        state = model.state_dict()
        model.load_state_dict(state)
        for name, param in model.named_parameters():
            np.testing.assert_array_equal(param.data, state[name])

    def test_load_state_dict_rejects_missing_keys(self):
        model = Sequential(Linear(2, 2, rng=0))
        state = model.state_dict()
        state.pop(next(iter(state)))
        with pytest.raises(KeyError):
            model.load_state_dict(state)

    def test_load_state_dict_rejects_shape_mismatch(self):
        model = Sequential(Linear(2, 2, rng=0))
        state = {name: np.zeros((5, 5)) for name in model.state_dict()}
        with pytest.raises((ValueError, KeyError)):
            model.load_state_dict(state)

    def test_train_eval_propagates(self):
        model = Sequential(Linear(2, 2, rng=0), ReLU())
        model.eval()
        assert all(not m.training for m in model.modules())
        model.train()
        assert all(m.training for m in model.modules())

    def test_zero_grad_and_num_parameters(self):
        model = Sequential(Linear(3, 2, rng=0))
        model(np.ones((1, 3), dtype=np.float32))
        model.backward(np.ones((1, 2), dtype=np.float32))
        assert any(np.abs(p.grad).sum() > 0 for p in model.parameters())
        model.zero_grad()
        assert all(np.abs(p.grad).sum() == 0 for p in model.parameters())
        assert model.num_parameters() == 3 * 2 + 2


class TestFunctional:
    def test_conv_output_size(self):
        assert F.conv_output_size(28, 3, 1, 1) == 28
        assert F.conv_output_size(8, 2, 2, 0) == 4
        with pytest.raises(ValueError):
            F.conv_output_size(2, 5, 1, 0)

    def test_im2col_col2im_are_adjoint(self, rng):
        """col2im(im2col(x)) multiplies each pixel by its patch count."""
        x = rng.random((2, 3, 6, 6)).astype(np.float32)
        cols, out_h, out_w = F.im2col(x, 3, 3, 1, 1)
        assert cols.shape == (2 * out_h * out_w, 3 * 9)
        back = F.col2im(np.ones_like(cols), x.shape, 3, 3, 1, 1)
        assert back.shape == x.shape
        # Interior pixels are covered by 9 overlapping 3x3 patches.
        assert back[0, 0, 3, 3] == 9.0

    def test_softmax_rows_sum_to_one(self, rng):
        logits = rng.normal(size=(5, 7)).astype(np.float32) * 10
        probs = F.softmax(logits)
        np.testing.assert_allclose(probs.sum(axis=1), 1.0, rtol=1e-5)
        assert np.all(probs >= 0)

    def test_log_softmax_matches_log_of_softmax(self, rng):
        logits = rng.normal(size=(3, 4)).astype(np.float64)
        np.testing.assert_allclose(
            F.log_softmax(logits), np.log(F.softmax(logits)), atol=1e-9
        )

    def test_sigmoid_extremes_are_stable(self):
        values = F.sigmoid(np.array([-1000.0, 1000.0], dtype=np.float32))
        np.testing.assert_allclose(values, [0.0, 1.0], atol=1e-6)

    def test_one_hot(self):
        np.testing.assert_array_equal(
            F.one_hot(np.array([1, 0]), 3), [[0, 1, 0], [1, 0, 0]]
        )


class TestInit:
    @pytest.mark.parametrize("fn", [he_normal, he_uniform, xavier_normal, xavier_uniform])
    def test_shapes_and_determinism(self, fn):
        a = fn((8, 4), rng=0)
        b = fn((8, 4), rng=0)
        assert a.shape == (8, 4) and a.dtype == np.float32
        np.testing.assert_array_equal(a, b)

    def test_he_normal_scale_tracks_fan_in(self):
        wide = he_normal((10, 1000), rng=0).std()
        narrow = he_normal((10, 10), rng=0).std()
        assert wide < narrow

    def test_zeros_and_ones(self):
        assert zeros((3,)).sum() == 0
        assert ones((3,)).sum() == 3


class TestLosses:
    def test_cross_entropy_perfect_prediction_is_small(self):
        loss_fn = CrossEntropyLoss()
        logits = np.array([[20.0, 0.0], [0.0, 20.0]], dtype=np.float32)
        assert loss_fn(logits, np.array([0, 1])) < 1e-6

    def test_cross_entropy_uniform_is_log_classes(self):
        loss_fn = CrossEntropyLoss()
        logits = np.zeros((4, 10), dtype=np.float32)
        assert abs(loss_fn(logits, np.zeros(4, dtype=int)) - np.log(10)) < 1e-5

    def test_gradient_matches_numerical(self, rng):
        loss_fn = CrossEntropyLoss()
        logits = rng.normal(size=(3, 4)).astype(np.float32)
        labels = np.array([0, 2, 3])
        loss_fn(logits, labels)
        grad = loss_fn.backward()
        eps = 1e-3
        perturbed = logits.copy()
        perturbed[1, 2] += eps
        plus = loss_fn(perturbed, labels)
        perturbed[1, 2] -= 2 * eps
        minus = loss_fn(perturbed, labels)
        assert abs((plus - minus) / (2 * eps) - grad[1, 2]) < 1e-3

    def test_label_smoothing_raises_loss_of_confident_predictions(self):
        logits = np.array([[30.0, 0.0]], dtype=np.float32)
        labels = np.array([0])
        plain = CrossEntropyLoss()(logits, labels)
        smoothed = CrossEntropyLoss(label_smoothing=0.2)(logits, labels)
        assert smoothed > plain

    def test_rejects_batch_mismatch(self):
        with pytest.raises(ValueError):
            CrossEntropyLoss()(np.zeros((2, 3), dtype=np.float32), np.array([0]))

    def test_l2_penalty_only_counts_weight_kinds(self):
        params = [
            Parameter(np.ones(4), kind="fc"),
            Parameter(np.ones(4), kind="bias"),
            Parameter(np.ones((2, 2)), kind="conv"),
        ]
        penalty = l2_penalty(params, weight_decay=1.0, num_samples=1)
        assert penalty == pytest.approx((4 + 4) / 2.0)
        assert l2_penalty(params, weight_decay=0.0) == 0.0


class TestOptimizers:
    def _quadratic_params(self):
        return [Parameter(np.array([5.0, -3.0], dtype=np.float32), kind="fc")]

    def test_sgd_converges_on_quadratic(self):
        params = self._quadratic_params()
        opt = SGD(params, lr=0.1)
        for _ in range(200):
            opt.zero_grad()
            params[0].grad += 2 * params[0].data
            opt.step()
        assert np.abs(params[0].data).max() < 1e-3

    def test_sgd_momentum_accelerates(self):
        plain = self._quadratic_params()
        momentum = self._quadratic_params()
        opt_plain = SGD(plain, lr=0.01)
        opt_momentum = SGD(momentum, lr=0.01, momentum=0.9)
        for _ in range(50):
            for params, opt in ((plain, opt_plain), (momentum, opt_momentum)):
                opt.zero_grad()
                params[0].grad += 2 * params[0].data
                opt.step()
        assert np.abs(momentum[0].data).max() < np.abs(plain[0].data).max()

    def test_adam_converges_on_quadratic(self):
        params = self._quadratic_params()
        opt = Adam(params, lr=0.2)
        for _ in range(300):
            opt.zero_grad()
            params[0].grad += 2 * params[0].data
            opt.step()
        assert np.abs(params[0].data).max() < 1e-2

    def test_weight_decay_shrinks_weights_without_gradient(self):
        params = [Parameter(np.ones(3, dtype=np.float32), kind="fc")]
        opt = SGD(params, lr=0.1, weight_decay=0.5)
        opt.step()  # gradient is zero, only decay acts
        assert np.all(params[0].data < 1.0)

    def test_weight_decay_skips_bias(self):
        params = [Parameter(np.ones(3, dtype=np.float32), kind="bias")]
        SGD(params, lr=0.1, weight_decay=0.5).step()
        np.testing.assert_array_equal(params[0].data, 1.0)

    def test_invalid_hyperparameters_raise(self):
        params = self._quadratic_params()
        with pytest.raises(ValueError):
            SGD(params, lr=-1.0)
        with pytest.raises(ValueError):
            SGD(params, lr=0.1, momentum=1.5)
        with pytest.raises(ValueError):
            Adam(params, lr=0.1, betas=(1.5, 0.9))
        with pytest.raises(ValueError):
            SGD([], lr=0.1)
