"""Tests for the HT attack framework: specs, trojans, placement, injection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator import AcceleratorConfig, WeightMapping
from repro.attacks import (
    ActuationAttack,
    AttackSpec,
    HardwareTrojan,
    HotspotAttack,
    HotspotAttackConfig,
    TriggerMode,
    attack_context,
    corrupted_state_dict,
    generate_scenarios,
    sample_outcome,
)
from repro.attacks.injection import OFF_RESONANCE_MAGNITUDE
from repro.attacks.scenario import AttackScenario, scenarios_by_spec
from repro.nn.models import build_model
from repro.utils.validation import ValidationError


class TestAttackSpec:
    def test_valid_spec_and_label(self):
        spec = AttackSpec("hotspot", "conv", 0.05)
        assert spec.label() == "hotspot-conv-5%"
        assert spec.blocks == ("conv",)
        assert AttackSpec("actuation", "both", 0.1).blocks == ("conv", "fc")

    @pytest.mark.parametrize(
        "kind, block, fraction",
        [("melt", "conv", 0.1), ("actuation", "dsp", 0.1), ("actuation", "conv", 0.0),
         ("actuation", "conv", 1.5)],
    )
    def test_invalid_specs_rejected(self, kind, block, fraction):
        with pytest.raises(ValidationError):
            AttackSpec(kind, block, fraction)


class TestHardwareTrojan:
    def test_always_on_trigger(self):
        assert HardwareTrojan().triggered

    def test_inference_count_trigger(self):
        trojan = HardwareTrojan(trigger_mode=TriggerMode.INFERENCE_COUNT, trigger_count=3)
        assert not trojan.triggered
        for _ in range(3):
            trojan.observe_inference()
        assert trojan.triggered

    def test_external_trigger(self):
        trojan = HardwareTrojan(trigger_mode=TriggerMode.EXTERNAL)
        assert not trojan.triggered
        trojan.arm()
        assert trojan.triggered
        trojan.disarm()
        assert not trojan.triggered

    def test_invalid_payload_rejected(self):
        with pytest.raises(ValidationError):
            HardwareTrojan(payload="melt")


class TestActuationAttack:
    def test_attacks_requested_fraction_of_mrs(self, tiny_accelerator_config):
        spec = AttackSpec("actuation", "conv", 0.25)
        outcome = ActuationAttack(spec).sample(tiny_accelerator_config, seed=0)
        capacity = tiny_accelerator_config.conv_block.capacity
        assert len(outcome.effects["conv"].slots_off) == round(0.25 * capacity)
        assert "fc" not in outcome.effects

    def test_slots_are_unique_and_in_range(self, tiny_accelerator_config):
        spec = AttackSpec("actuation", "both", 0.5)
        outcome = ActuationAttack(spec).sample(tiny_accelerator_config, seed=1)
        for block in ("conv", "fc"):
            slots = outcome.effects[block].slots_off
            assert len(np.unique(slots)) == len(slots)
            assert slots.max() < tiny_accelerator_config.block(block).capacity

    def test_different_seeds_give_different_placements(self, tiny_accelerator_config):
        spec = AttackSpec("actuation", "conv", 0.2)
        a = ActuationAttack(spec).sample(tiny_accelerator_config, seed=0)
        b = ActuationAttack(spec).sample(tiny_accelerator_config, seed=99)
        assert not np.array_equal(
            a.effects["conv"].slots_off, b.effects["conv"].slots_off
        )

    def test_rejects_wrong_kind(self):
        with pytest.raises(ValidationError):
            ActuationAttack(AttackSpec("hotspot", "conv", 0.1))

    def test_outcome_counts(self, tiny_accelerator_config):
        spec = AttackSpec("actuation", "conv", 0.1)
        outcome = ActuationAttack(spec).sample(tiny_accelerator_config, seed=0)
        assert outcome.num_attacked_mrs("conv") == len(outcome.effects["conv"].slots_off)
        assert not outcome.is_empty()


class TestHotspotAttack:
    def test_attacks_requested_fraction_of_banks(self, tiny_accelerator_config):
        spec = AttackSpec("hotspot", "fc", 0.2)
        outcome = HotspotAttack(spec).sample(tiny_accelerator_config, seed=0)
        num_banks = tiny_accelerator_config.fc_block.num_banks
        assert len(outcome.effects["fc"].attacked_banks) == round(0.2 * num_banks)

    def test_attacked_banks_have_largest_rise(self, tiny_accelerator_config):
        spec = AttackSpec("hotspot", "conv", 0.1)
        outcome = HotspotAttack(spec).sample(tiny_accelerator_config, seed=0)
        delta = outcome.effects["conv"].bank_delta_t
        attacked = outcome.effects["conv"].attacked_banks
        hottest = max(delta, key=delta.get)
        assert hottest in attacked
        # Attacked banks must be hot enough to shift by about a channel.
        assert all(delta[b] > 10.0 for b in attacked)

    def test_neighbours_receive_smaller_rise(self, tiny_accelerator_config):
        spec = AttackSpec("hotspot", "conv", 0.1)
        outcome = HotspotAttack(spec).sample(tiny_accelerator_config, seed=2)
        delta = outcome.effects["conv"].bank_delta_t
        attacked = set(outcome.effects["conv"].attacked_banks)
        neighbour_rises = [rise for bank, rise in delta.items() if bank not in attacked]
        if neighbour_rises:
            assert max(neighbour_rises) < min(delta[b] for b in attacked)

    def test_num_attacked_mrs_recorded_per_kind(self, tiny_accelerator_config):
        spec = AttackSpec("hotspot", "conv", 0.1)
        outcome = HotspotAttack(spec).sample(tiny_accelerator_config, seed=0)
        cols = tiny_accelerator_config.conv_block.cols
        assert outcome.num_attacked_mrs("conv") == (
            len(outcome.effects["conv"].attacked_banks) * cols
        )
        assert outcome.num_attacked_mrs("fc") == 0

    def test_num_attacked_mrs_ambiguous_hand_built_outcome(self):
        from repro.attacks import AttackOutcome, BlockEffect

        outcome = AttackOutcome(spec=AttackSpec("hotspot", "conv", 0.1))
        outcome.effects["conv"] = BlockEffect(bank_delta_t={0: 20.0})
        with pytest.raises(ValidationError):
            outcome.num_attacked_mrs("conv")

    def test_rejects_wrong_kind(self):
        with pytest.raises(ValidationError):
            HotspotAttack(AttackSpec("actuation", "conv", 0.1))

    def test_custom_config_validated(self):
        with pytest.raises(ValidationError):
            HotspotAttackConfig(heater_power_mw=-5.0)


class TestScenarios:
    def test_full_grid_size(self):
        scenarios = generate_scenarios(num_placements=10)
        # 2 kinds x 3 blocks x 3 fractions x 10 placements
        assert len(scenarios) == 2 * 3 * 3 * 10

    def test_grid_is_deterministic(self):
        a = generate_scenarios(num_placements=2, master_seed=5)
        b = generate_scenarios(num_placements=2, master_seed=5)
        assert [s.seed for s in a] == [s.seed for s in b]
        c = generate_scenarios(num_placements=2, master_seed=6)
        assert [s.seed for s in a] != [s.seed for s in c]

    def test_scenarios_by_spec_groups_placements(self):
        scenarios = generate_scenarios(num_placements=4, kinds=("actuation",),
                                       blocks=("conv",), fractions=(0.05,))
        grouped = scenarios_by_spec(scenarios)
        assert list(grouped) == ["actuation-conv-5%"]
        assert len(grouped["actuation-conv-5%"]) == 4

    def test_sample_outcome_dispatches_by_kind(self, tiny_accelerator_config):
        actuation = AttackScenario(AttackSpec("actuation", "conv", 0.1), placement=0, seed=1)
        hotspot = AttackScenario(AttackSpec("hotspot", "conv", 0.1), placement=0, seed=1)
        out_a = sample_outcome(actuation, tiny_accelerator_config)
        out_h = sample_outcome(hotspot, tiny_accelerator_config)
        assert out_a.effects["conv"].slots_off is not None
        assert not out_a.effects["conv"].bank_delta_t
        assert out_h.effects["conv"].bank_delta_t
        assert out_h.effects["conv"].slots_off is None

    def test_scenario_label(self):
        scenario = AttackScenario(AttackSpec("hotspot", "both", 0.01), placement=3, seed=0)
        assert scenario.label() == "hotspot-both-1%#3"


class TestInjection:
    @pytest.fixture
    def model_and_mapping(self, tiny_accelerator_config):
        model = build_model("cnn_mnist", profile="scaled", rng=0)
        mapping = WeightMapping(model, tiny_accelerator_config)
        return model, mapping

    def test_actuation_zeroes_exactly_the_hosted_weights(self, model_and_mapping,
                                                         tiny_accelerator_config):
        model, mapping = model_and_mapping
        spec = AttackSpec("actuation", "conv", 0.1)
        outcome = ActuationAttack(spec).sample(tiny_accelerator_config, seed=0)
        corrupted = corrupted_state_dict(model, mapping, outcome)
        attacked_slots = outcome.effects["conv"].slots_off
        for mapped in mapping.parameters_in_block("conv"):
            original = model.state_dict()[mapped.name].reshape(-1)
            changed = corrupted[mapped.name].reshape(-1)
            hit = np.isin(mapping.slots_for(mapped), attacked_slots)
            # Hosted weights collapse to (near) zero magnitude.
            assert np.all(np.abs(changed[hit]) <= mapped.scale * OFF_RESONANCE_MAGNITUDE + 1e-6)
            # Untouched weights stay numerically identical (float32 mapping roundtrip).
            np.testing.assert_allclose(changed[~hit], original[~hit], atol=1e-6)

    def test_fc_only_attack_leaves_conv_untouched(self, model_and_mapping,
                                                  tiny_accelerator_config):
        model, mapping = model_and_mapping
        outcome = ActuationAttack(AttackSpec("actuation", "fc", 0.2)).sample(
            tiny_accelerator_config, seed=0
        )
        corrupted = corrupted_state_dict(model, mapping, outcome)
        for mapped in mapping.parameters_in_block("conv"):
            np.testing.assert_allclose(
                corrupted[mapped.name], model.state_dict()[mapped.name], atol=1e-6
            )

    def test_hotspot_corrupts_clusters(self, model_and_mapping, tiny_accelerator_config):
        model, mapping = model_and_mapping
        outcome = HotspotAttack(AttackSpec("hotspot", "conv", 0.1)).sample(
            tiny_accelerator_config, seed=0
        )
        corrupted = corrupted_state_dict(model, mapping, outcome)
        geometry = tiny_accelerator_config.conv_block
        changed_banks = set()
        for mapped in mapping.parameters_in_block("conv"):
            original = model.state_dict()[mapped.name].reshape(-1)
            changed = corrupted[mapped.name].reshape(-1)
            banks = mapping.banks_for(mapped)
            diff = np.abs(changed - original) > 1e-7
            changed_banks.update(np.unique(banks[diff]).tolist())
        assert set(outcome.effects["conv"].attacked_banks).issubset(changed_banks)
        assert len(changed_banks) < geometry.num_banks

    def test_hotspot_corrupts_more_weights_than_actuation(self, trained_mnist_model,
                                                          scaled_accelerator_config):
        from repro.accelerator import AttackedInferenceEngine

        engine = AttackedInferenceEngine(trained_mnist_model, scaled_accelerator_config)
        actuation = ActuationAttack(AttackSpec("actuation", "both", 0.05)).sample(
            scaled_accelerator_config, seed=0
        )
        hotspot = HotspotAttack(AttackSpec("hotspot", "both", 0.05)).sample(
            scaled_accelerator_config, seed=0
        )
        assert engine.weight_corruption_fraction(hotspot) > engine.weight_corruption_fraction(
            actuation
        )

    def test_attack_context_restores_on_exception(self, model_and_mapping,
                                                  tiny_accelerator_config):
        model, mapping = model_and_mapping
        before = {k: v.copy() for k, v in model.state_dict().items()}
        outcome = ActuationAttack(AttackSpec("actuation", "both", 0.3)).sample(
            tiny_accelerator_config, seed=0
        )
        with pytest.raises(RuntimeError):
            with attack_context(model, mapping, outcome):
                raise RuntimeError("boom")
        after = model.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])

    def test_biases_and_batchnorm_never_corrupted(self, model_and_mapping,
                                                  tiny_accelerator_config):
        model, mapping = model_and_mapping
        outcome = ActuationAttack(AttackSpec("actuation", "both", 0.5)).sample(
            tiny_accelerator_config, seed=0
        )
        corrupted = corrupted_state_dict(model, mapping, outcome)
        mapped_names = {m.name for m in mapping.parameters}
        for name, value in model.state_dict().items():
            if name not in mapped_names:
                np.testing.assert_array_equal(corrupted[name], value)
