"""Shared fixtures: small trained models, dataset splits, accelerator configs.

Expensive fixtures (trained models) are session-scoped so the integration
tests across modules reuse them instead of re-training.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator.config import AcceleratorConfig, BlockGeometry
from repro.datasets import load_dataset, train_test_split
from repro.nn import Trainer, TrainingConfig
from repro.nn.models import build_model


@pytest.fixture(scope="session")
def mnist_split():
    """A small synthetic MNIST split shared by the integration tests."""
    dataset = load_dataset("mnist", num_samples=400, seed=0)
    return train_test_split(dataset, test_fraction=0.25, seed=1)


@pytest.fixture(scope="session")
def trained_mnist_model(mnist_split):
    """A trained scaled CNN_1 model (baseline accuracy well above chance)."""
    model = build_model("cnn_mnist", profile="scaled", rng=0)
    config = TrainingConfig(epochs=4, batch_size=32, lr=2e-3, seed=0)
    Trainer(model, config).fit(mnist_split.train)
    return model


@pytest.fixture(scope="session")
def scaled_accelerator_config():
    """The reduced accelerator configuration used by the experiments."""
    return AcceleratorConfig.scaled_config()


@pytest.fixture
def tiny_accelerator_config():
    """A tiny accelerator configuration for fast attack/mapping unit tests."""
    return AcceleratorConfig(
        conv_block=BlockGeometry(4, 4, 5),
        fc_block=BlockGeometry(3, 6, 5),
        name="tiny",
    )


@pytest.fixture
def rng():
    """A fresh deterministic RNG per test."""
    return np.random.default_rng(1234)
