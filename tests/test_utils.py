"""Tests for repro.utils: RNG management, validation and serialization."""

from __future__ import annotations

import numpy as np
import pytest

from repro.utils import (
    RngFactory,
    ValidationError,
    check_fraction,
    check_in_choices,
    check_positive,
    check_positive_int,
    check_probability,
    check_shape,
    default_rng,
    load_arrays,
    save_arrays,
    spawn_rngs,
)
from repro.utils.serialization import load_json, save_json


class TestRng:
    def test_default_rng_from_int_is_deterministic(self):
        a = default_rng(7).random(5)
        b = default_rng(7).random(5)
        np.testing.assert_allclose(a, b)

    def test_default_rng_passthrough_generator(self):
        gen = np.random.default_rng(3)
        assert default_rng(gen) is gen

    def test_spawn_rngs_are_independent_and_reproducible(self):
        first = [r.random() for r in spawn_rngs(0, 3)]
        second = [r.random() for r in spawn_rngs(0, 3)]
        assert first == second
        assert len(set(first)) == 3

    def test_spawn_rngs_negative_count_raises(self):
        with pytest.raises(ValueError):
            spawn_rngs(0, -1)

    def test_rng_factory_same_name_same_stream(self):
        factory = RngFactory(seed=5)
        a = factory.get("attack")
        assert factory.get("attack") is a

    def test_rng_factory_different_names_differ(self):
        factory = RngFactory(seed=5)
        a = factory.get("a").random()
        b = factory.get("b").random()
        assert a != b

    def test_rng_factory_child_seed_stable(self):
        assert RngFactory(seed=9).child_seed("x") == RngFactory(seed=9).child_seed("x")
        assert RngFactory(seed=9).child_seed("x") != RngFactory(seed=10).child_seed("x")


class TestValidation:
    def test_check_positive_accepts_positive(self):
        assert check_positive(2.5, "x") == 2.5

    @pytest.mark.parametrize("value", [0, -1, float("nan"), float("inf")])
    def test_check_positive_rejects(self, value):
        with pytest.raises(ValidationError):
            check_positive(value, "x")

    def test_check_positive_int(self):
        assert check_positive_int(3, "n") == 3
        with pytest.raises(ValidationError):
            check_positive_int(0, "n")
        with pytest.raises(ValidationError):
            check_positive_int(2.5, "n")
        with pytest.raises(ValidationError):
            check_positive_int(True, "n")

    def test_check_fraction_bounds(self):
        assert check_fraction(0.5, "f") == 0.5
        assert check_fraction(1.0, "f") == 1.0
        with pytest.raises(ValidationError):
            check_fraction(0.0, "f")
        assert check_fraction(0.0, "f", allow_zero=True) == 0.0
        with pytest.raises(ValidationError):
            check_fraction(1.2, "f")

    def test_check_probability(self):
        assert check_probability(0.0, "p") == 0.0
        assert check_probability(1.0, "p") == 1.0
        with pytest.raises(ValidationError):
            check_probability(-0.1, "p")

    def test_check_in_choices(self):
        assert check_in_choices("a", "c", ("a", "b")) == "a"
        with pytest.raises(ValidationError):
            check_in_choices("z", "c", ("a", "b"))

    def test_check_shape_wildcards(self):
        array = np.zeros((3, 4))
        assert check_shape(array, (3, None), "x") is not None
        with pytest.raises(ValidationError):
            check_shape(array, (3, 5), "x")
        with pytest.raises(ValidationError):
            check_shape(array, (3, 4, 1), "x")


class TestSerialization:
    def test_save_and_load_arrays_roundtrip(self, tmp_path):
        arrays = {"a": np.arange(6).reshape(2, 3), "b": np.ones(4, dtype=np.float32)}
        path = save_arrays(tmp_path / "state.npz", arrays)
        loaded = load_arrays(path)
        assert set(loaded) == {"a", "b"}
        np.testing.assert_array_equal(loaded["a"], arrays["a"])
        np.testing.assert_array_equal(loaded["b"], arrays["b"])

    def test_save_json_converts_numpy_types(self, tmp_path):
        payload = {"x": np.float64(1.5), "n": np.int64(3), "arr": np.arange(3)}
        path = save_json(tmp_path / "out.json", payload)
        loaded = load_json(path)
        assert loaded == {"x": 1.5, "n": 3, "arr": [0, 1, 2]}

    def test_save_json_rejects_unknown_types(self, tmp_path):
        with pytest.raises(TypeError):
            save_json(tmp_path / "bad.json", {"x": object()})
