"""Tests for multi-node worker federation (leases, fencing, node lifecycle).

``TestFederationBackend`` unit-tests the coordinator-side lease manager:
time-bounded leases, token fencing, dead-node detection, quarantine, drain.
``TestFederatedService`` runs a live coordinator with in-process
:class:`NodeAgent` threads.  ``TestFederationChaos`` is the acceptance
scenario: a 2-node federated sweep under node-kill, a healing heartbeat
partition and torn uploads completes bit-identical to a fault-free
single-node baseline, with the killed node reported dead in ``/healthz``.
"""

from __future__ import annotations

import json
import os
import signal
import subprocess
import sys
import threading
import time
from pathlib import Path
from time import monotonic

import pytest

from repro.engine import Campaign, ResultCache, RetryPolicy, RunRecord, RunSpec
from repro.engine.executor import RunBackend, failure_record
from repro.engine.spec import SweepSpec
from repro.faults import ENV_VAR, FaultPlan, FaultRule
from repro.serve import (
    CampaignService,
    FederationBackend,
    FencedLeaseError,
    NodeAgent,
    NodeGoneError,
    ServeClient,
    ServeDaemon,
    UnknownNodeError,
    WorkerPool,
)

REPO_SRC = Path(__file__).resolve().parents[1] / "src"

FAST_SWEEP = {
    "experiment_id": "ablation_tuning",
    "grid": {"shifts_nm": [[0.2], [0.5], [1.0]]},
}

#: Six fast points — same shape the serve chaos tests use.
CHAOS_SWEEP = {
    "experiment_id": "ablation_tuning",
    "grid": {"shifts_nm": [[0.1], [0.2], [0.3], [0.4], [0.5], [0.6]]},
}


def chaos_specs() -> list[RunSpec]:
    return SweepSpec(
        experiment_id=CHAOS_SWEEP["experiment_id"], grid=CHAOS_SWEEP["grid"]
    ).expand()


def canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


def _subprocess_env(faults: FaultPlan | None = None) -> dict:
    env = dict(os.environ)
    env["PYTHONPATH"] = f"{REPO_SRC}{os.pathsep}{env.get('PYTHONPATH', '')}"
    env.pop(ENV_VAR, None)
    if faults is not None:
        env[ENV_VAR] = faults.to_json()
    return env


def _ok_record(cache: ResultCache, spec: RunSpec) -> RunRecord:
    return RunRecord(
        fingerprint=cache.fingerprint(spec), spec=spec, payload={"shift": spec.params}
    )


# ------------------------------------------------------------- lease manager
class TestFederationBackend:
    def _backend(self, tmp_path, **kwargs) -> FederationBackend:
        kwargs.setdefault("lease_ttl_s", 0.5)
        kwargs.setdefault("heartbeat_s", 0.1)
        return FederationBackend(cache_dir=str(tmp_path / "cache"), **kwargs)

    def test_backends_share_the_runbackend_interface(self, tmp_path):
        """The scheduler drives local pools and the federation uniformly."""
        fed = self._backend(tmp_path)
        pool = WorkerPool(workers=1, cache_dir=str(tmp_path / "pool"))
        assert isinstance(fed, RunBackend) and isinstance(pool, RunBackend)
        assert fed.backend_name == "federation"
        assert pool.backend_name == "local-pool"
        for method in ("try_submit", "in_flight", "kill_for", "reap", "health"):
            assert callable(getattr(fed, method)) and callable(getattr(pool, method))

    def test_register_claim_upload_roundtrip(self, tmp_path):
        fed = self._backend(tmp_path)
        config = fed.register_node("n1", workers=2)
        assert config["generation"] == 1
        assert config["lease_ttl_s"] == fed.lease_ttl_s
        spec = RunSpec("ablation_tuning", params={"shifts_nm": [0.2]})
        assert fed.try_submit(("job", 0), spec) is True
        leases = fed.claim("n1", max_runs=4)
        assert len(leases) == 1
        lease = leases[0]
        assert lease["spec"]["experiment_id"] == "ablation_tuning"
        assert fed.in_flight() == {("job", 0): ("n1", fed.in_flight()[("job", 0)][1])}
        record = _ok_record(fed.cache, spec)
        fed.upload(lease["lease_id"], "n1", lease["token"], record.to_dict())
        got = list(fed.completions(timeout=0.1))
        assert got == [(("job", 0), got[0][1])] and got[0][1].ok
        # Write-through: the coordinator cache now owns the result.
        assert fed.cache.get(spec) is not None
        node = fed.nodes()[0]
        assert node["completed"] == 1 and node["leases"] == 0
        assert fed.health()["degraded"] is False

    def test_claim_respects_worker_budget_and_drain(self, tmp_path):
        fed = self._backend(tmp_path)
        fed.register_node("n1", workers=1)
        for i in range(2):
            fed.submit(("job", i), RunSpec("ablation_tuning", params={"shifts_nm": [i]}))
        assert len(fed.claim("n1", max_runs=5)) == 1  # 1 worker -> 1 lease
        assert fed.claim("n1", max_runs=5) == []  # slot already holds a lease
        fed.drain("n1")
        fed._nodes["n1"].leases.clear()  # white-box: free the slot
        assert fed.claim("n1", max_runs=5) == []  # draining claims nothing
        assert fed.nodes()[0]["state"] == "draining"

    def test_expired_lease_is_reaped_and_upload_fenced(self, tmp_path):
        fed = self._backend(tmp_path, lease_ttl_s=0.15)
        fed.register_node("n1", workers=1)
        spec = RunSpec("ablation_tuning", params={"shifts_nm": [0.2]})
        fed.submit(("job", 0), spec)
        lease = fed.claim("n1")[0]
        time.sleep(0.25)
        assert fed.reap() == [("job", 0)]  # reclaimed: scheduler re-dispatches
        record = _ok_record(fed.cache, spec)
        with pytest.raises(FencedLeaseError):
            fed.upload(lease["lease_id"], "n1", lease["token"], record.to_dict())
        assert fed.cache.get(spec) is None  # fenced upload never touches cache
        assert fed.nodes()[0]["expired_leases"] == 1

    def test_renew_extends_and_bad_token_is_fenced(self, tmp_path):
        fed = self._backend(tmp_path, lease_ttl_s=0.3, node_timeout_s=10.0)
        fed.register_node("n1", workers=1)
        fed.submit(("job", 0), RunSpec("ablation_tuning", params={"shifts_nm": [0.2]}))
        lease = fed.claim("n1")[0]
        for _ in range(3):  # renewals outlive several TTLs
            time.sleep(0.15)
            fed.renew(lease["lease_id"], "n1", lease["token"])
            assert fed.reap() == []
        with pytest.raises(FencedLeaseError):
            fed.renew(lease["lease_id"], "n1", "not-the-token")
        with pytest.raises(FencedLeaseError):
            fed.renew(lease["lease_id"], "other-node", lease["token"])

    def test_kill_for_revokes_the_lease(self, tmp_path):
        fed = self._backend(tmp_path)
        fed.register_node("n1", workers=1)
        spec = RunSpec("ablation_tuning", params={"shifts_nm": [0.2]})
        fed.submit(("job", 0), spec)
        lease = fed.claim("n1")[0]
        assert fed.kill_for(("job", 0)) is True
        assert fed.kill_for(("job", 0)) is False
        with pytest.raises(FencedLeaseError):  # the remote SIGKILL analogue
            fed.upload(lease["lease_id"], "n1", lease["token"],
                       _ok_record(fed.cache, spec).to_dict())

    def test_dead_node_detection_and_revival_fences_old_leases(self, tmp_path):
        fed = self._backend(tmp_path, lease_ttl_s=5.0, node_timeout_s=0.2)
        fed.register_node("n1", workers=2)
        spec = RunSpec("ablation_tuning", params={"shifts_nm": [0.2]})
        fed.submit(("job", 0), spec)
        lease = fed.claim("n1")[0]
        time.sleep(0.3)  # silence > node_timeout_s
        assert fed.reap() == [("job", 0)]  # dead node's leases requeue at once
        assert fed.nodes()[0]["state"] == "dead"
        assert fed.health()["degraded"] is True
        with pytest.raises(NodeGoneError):
            fed.heartbeat("n1")
        with pytest.raises(NodeGoneError):
            fed.claim("n1")
        # The healed partition re-registers: generation bumps, cluster heals,
        # but the pre-partition lease token stays fenced forever.
        config = fed.register_node("n1", workers=2)
        assert config["generation"] == 2
        assert fed.health()["degraded"] is False
        with pytest.raises(FencedLeaseError):
            fed.upload(lease["lease_id"], "n1", lease["token"],
                       _ok_record(fed.cache, spec).to_dict())

    def test_unknown_node_is_typed(self, tmp_path):
        fed = self._backend(tmp_path)
        with pytest.raises(UnknownNodeError):
            fed.heartbeat("ghost")
        with pytest.raises(UnknownNodeError):
            fed.drain("ghost")
        with pytest.raises(UnknownNodeError):
            fed.deregister_node("ghost")

    def test_deregister_requeues_but_does_not_degrade(self, tmp_path):
        fed = self._backend(tmp_path)
        fed.register_node("n1", workers=1)
        fed.submit(("job", 0), RunSpec("ablation_tuning", params={"shifts_nm": [0.2]}))
        fed.claim("n1")
        fed.deregister_node("n1")
        assert fed.reap() == [("job", 0)]
        assert fed.nodes()[0]["state"] == "left"
        assert fed.health()["degraded"] is False  # graceful exit is healthy

    def test_poisoning_node_is_quarantined(self, tmp_path):
        fed = self._backend(tmp_path, quarantine_after=2)
        fed.register_node("bad", workers=2)
        for i in range(2):
            spec = RunSpec("ablation_tuning", params={"shifts_nm": [float(i)]})
            fed.submit(("job", i), spec)
            lease = fed.claim("bad")[0]
            poisoned = failure_record(spec, "boom", executor_kind="node-worker")
            fed.upload(lease["lease_id"], "bad", lease["token"], poisoned.to_dict())
        node = fed.nodes()[0]
        assert node["state"] == "quarantined" and node["failed"] == 2
        assert fed.claim("bad") == []  # no new leases for a poisoner
        assert fed.health()["degraded"] is True
        # Reconnecting does not launder the record.
        fed.register_node("bad", workers=2)
        assert fed.nodes()[0]["quarantined"] is True

    def test_withdraw_and_capacity_accounting(self, tmp_path):
        fed = self._backend(tmp_path)
        spec = RunSpec("ablation_tuning", params={"shifts_nm": [0.2]})
        assert fed.try_submit(("job", 0), spec) is False  # no nodes, no capacity
        fed.register_node("n1", workers=2)
        assert fed.capacity() == 2
        assert fed.try_submit(("job", 0), spec) is True
        assert fed.try_submit(("job", 1), spec) is True
        assert fed.try_submit(("job", 2), spec) is False  # backlog == slots
        assert fed.withdraw(("job", 1)) is True
        assert fed.withdraw(("job", 1)) is False
        assert fed.capacity() == 1


# ------------------------------------------------------- live federated runs
def _coordinator(tmp, **kwargs):
    """A coordinator service + daemon with test-speed federation knobs."""
    kwargs.setdefault("workers", 0)
    kwargs.setdefault("tick_s", 0.05)
    kwargs.setdefault("lease_ttl_s", 2.0)
    kwargs.setdefault("heartbeat_s", 0.25)
    kwargs.setdefault("node_timeout_s", 1.25)
    kwargs.setdefault(
        "policy", RetryPolicy(max_attempts=8, backoff_s=0.1, backoff_cap_s=0.5)
    )
    service = CampaignService(
        jobstore_dir=tmp / "jobs", cache_dir=tmp / "cache", **kwargs
    )
    daemon = ServeDaemon(service, port=0)
    daemon.start()
    return service, daemon


class TestFederatedService:
    def test_sweep_runs_entirely_on_a_remote_node(self, tmp_path):
        """A coordinator with zero local workers completes a sweep through
        one NodeAgent, then drains it cleanly over HTTP."""
        service, daemon = _coordinator(tmp_path)
        agent = NodeAgent(
            daemon.url, workers=2, node_id="remote-a",
            cache_dir=str(tmp_path / "nodecache"), poll_s=0.05,
        )
        thread = threading.Thread(target=agent.run, daemon=True)
        thread.start()
        try:
            client = ServeClient(daemon.url)
            job = client.wait(client.submit(FAST_SWEEP)["job_id"], timeout=90)
            assert job["state"] == "done" and job["failures"] == 0
            assert job["done"] == job["total"] == 3
            assert agent.stats["executed"] == 3 and agent.stats["uploaded"] == 3
            health = client.health()
            assert health["workers"] == 0 and health["degraded"] is False
            nodes = {n["node_id"]: n for n in client.nodes()}
            assert nodes["remote-a"]["state"] == "alive"
            assert nodes["remote-a"]["completed"] == 3
            # Results are read back from the coordinator's own cache.
            assert len(client.results(job["job_id"])["payloads"]) == 3
            # Remote drain: the agent notices via its heartbeat and exits.
            client.drain_node("remote-a")
            thread.join(timeout=30)
            assert not thread.is_alive()
            assert {n["node_id"]: n["state"] for n in client.nodes()}[
                "remote-a"
            ] == "left"
        finally:
            agent.stop()
            thread.join(timeout=10)
            daemon.shutdown()

    def test_killed_node_leases_requeue_to_a_second_node(self, tmp_path):
        """Hard-stop a node mid-sweep: its leases expire, the points
        re-dispatch to a later-joining node, and the job still finishes."""
        service, daemon = _coordinator(tmp_path)
        sweep = {
            "experiment_id": "signal_mc",
            "grid": {"size": [96]},
            "base": {"trials": 8000},
            "seeds": [0, 1, 2, 3],
        }
        first = NodeAgent(
            daemon.url, workers=2, node_id="doomed",
            cache_dir=str(tmp_path / "n1"), poll_s=0.05,
        )
        first_thread = threading.Thread(target=first.run, daemon=True)
        first_thread.start()
        second = NodeAgent(
            daemon.url, workers=2, node_id="survivor",
            cache_dir=str(tmp_path / "n2"), poll_s=0.05,
        )
        second_thread = threading.Thread(target=second.run, daemon=True)
        try:
            client = ServeClient(daemon.url)
            job_id = client.submit(sweep)["job_id"]
            deadline = monotonic() + 30
            while monotonic() < deadline and not first._held:
                time.sleep(0.05)
            assert first._held, "first node never claimed a lease"
            first.stop()  # no drain, no deregister: renewals just stop
            first_thread.join(timeout=30)
            second_thread.start()
            job = client.wait(job_id, timeout=120)
            assert job["state"] == "done" and job["failures"] == 0
            assert job["done"] == job["total"] == 4
            nodes = {n["node_id"]: n for n in client.nodes()}
            assert nodes["doomed"]["state"] == "dead"
            assert nodes["survivor"]["completed"] >= 1
            health = client.health()
            assert health["degraded"] is True  # the dead node is visible
            assert health["status"] == "degraded"
        finally:
            first.stop()
            second.stop()
            first_thread.join(timeout=10)
            second_thread.join(timeout=10)
            daemon.shutdown()


# -------------------------------------------------------- acceptance: chaos
class TestFederationChaos:
    def _spawn_node(self, url, node_id, tmp, plan=None) -> subprocess.Popen:
        return subprocess.Popen(
            [
                sys.executable, "-m", "repro", "node",
                "--coordinator", url,
                "--workers", "2",
                "--node-id", node_id,
                "--cache-dir", str(tmp / f"{node_id}-cache"),
            ],
            env=_subprocess_env(plan),
            stdout=subprocess.DEVNULL,
            stderr=subprocess.DEVNULL,
            start_new_session=True,
        )

    @pytest.mark.slow
    def test_two_node_chaos_bit_identical(self, tmp_path):
        """The ISSUE acceptance scenario: a 2-node federated sweep under a
        node SIGKILL, a healing heartbeat partition, lost renewals and torn
        uploads completes with zero failures, bit-identical to a fault-free
        single-node baseline; the killed node is reported dead in /healthz;
        no point is ever dispatched more than max_attempts times."""
        specs = chaos_specs()
        baseline = Campaign(specs, cache=tmp_path / "baseline").run()
        assert baseline.failures == 0
        expected = {r.spec.label(): r.payload for r in baseline.records}

        service, daemon = _coordinator(tmp_path, node_quarantine_after=50)
        torn = FaultPlan(
            [
                # Torn uploads: the request body is truncated mid-transfer,
                # the coordinator 400s the fragment, the agent retries whole.
                FaultRule("node.upload", "corrupt_write", probability=0.4),
                FaultRule("node.lease_renew", "raise", probability=0.2),
            ],
            seed=7,
        )
        partitioned = FaultPlan(
            # A partition that heals: the first heartbeats are lost, then the
            # node reconnects (possibly after being declared dead) and keeps
            # working under a bumped generation.
            [FaultRule("node.heartbeat", "raise", probability=1.0, max_fires=4)],
            seed=11,
        )
        doomed = self._spawn_node(daemon.url, "chaos-n1", tmp_path, torn)
        flaky = self._spawn_node(daemon.url, "chaos-n2", tmp_path, partitioned)
        try:
            client = ServeClient(daemon.url)
            deadline = monotonic() + 60
            while monotonic() < deadline:
                alive = [n for n in client.nodes() if n["state"] == "alive"]
                if len(alive) == 2:
                    break
                time.sleep(0.1)
            else:
                pytest.fail("node agents never registered")

            job_id = client.submit(CHAOS_SWEEP)["job_id"]
            # Let the sweep get going, then SIGKILL one whole node mid-run.
            deadline = monotonic() + 60
            while monotonic() < deadline:
                job = client.job(job_id)
                if job["done"] >= 1 or job["executed"] >= 1:
                    break
                time.sleep(0.05)
            os.killpg(doomed.pid, signal.SIGKILL)
            doomed.wait(timeout=10)

            final = client.wait(job_id, timeout=180)
            assert final["state"] == "done", final
            assert final["done"] == final["total"] == 6
            assert final["failures"] == 0 and not final["quarantined"]

            # Bit-identity against the fault-free single-node baseline.
            results = client.results(job_id)
            assert len(results["records"]) == 6
            for record in results["records"]:
                assert record["status"] == "ok", record
                assert canonical(record["payload"]) == canonical(
                    expected[record["label"]]
                ), f"payload drift under federation chaos: {record['label']}"

            # The killed node is visible: dead in /healthz, cluster degraded.
            # (The job can finish before the node's heartbeat timeout lapses,
            # so give the coordinator's reaper a moment to notice.)
            deadline = monotonic() + 30
            while monotonic() < deadline:
                health = client.health()
                nodes = {n["node_id"]: n for n in health["nodes"]}
                if nodes["chaos-n1"]["state"] == "dead":
                    break
                time.sleep(0.1)
            assert nodes["chaos-n1"]["state"] == "dead"
            assert health["degraded"] is True

            # Attempt budget held: every retry event stays under max_attempts.
            policy_max = service.policy.max_attempts
            for line in client.events(job_id):
                if "(attempt " in line:
                    used = int(line.split("(attempt ", 1)[1].split("/", 1)[0])
                    assert used <= policy_max, line
        finally:
            for proc in (doomed, flaky):
                if proc.poll() is None:
                    try:
                        os.killpg(proc.pid, signal.SIGKILL)
                    except ProcessLookupError:
                        pass
                    proc.wait(timeout=10)
            daemon.shutdown()
