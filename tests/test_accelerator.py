"""Tests for the accelerator configuration, mapping, inference engine and power model."""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator import (
    AcceleratorConfig,
    AttackedInferenceEngine,
    BlockGeometry,
    MRCoordinate,
    ONNAccelerator,
    PowerModel,
    SignalLevelSimulator,
    WeightMapping,
    coordinate_to_slot,
    slot_to_coordinate,
)
from repro.accelerator.blocks import bank_of_slot, slots_of_bank
from repro.attacks import ActuationAttack, AttackSpec
from repro.nn.models import build_model
from repro.utils.validation import ValidationError


class TestConfig:
    def test_paper_config_matches_section_iv(self):
        config = AcceleratorConfig.paper_config()
        assert config.conv_block.num_units == 100
        assert config.conv_block.rows == config.conv_block.cols == 20
        assert config.fc_block.num_units == 60
        assert config.fc_block.rows == config.fc_block.cols == 150
        assert config.conv_block.capacity == 40_000
        assert config.fc_block.capacity == 1_350_000

    def test_scaled_config_preserves_conv_fc_ratio_order(self):
        config = AcceleratorConfig.scaled_config()
        assert config.fc_block.capacity > config.conv_block.capacity

    def test_block_lookup_and_describe(self):
        config = AcceleratorConfig.paper_config()
        assert config.block("conv") is config.conv_block
        assert config.block("fc") is config.fc_block
        with pytest.raises(ValidationError):
            config.block("dsp")
        described = config.describe()
        assert described["total_mrs"] == config.total_mrs

    def test_invalid_geometry_rejected(self):
        with pytest.raises(ValidationError):
            BlockGeometry(0, 2, 2)


class TestCoordinates:
    def test_slot_coordinate_roundtrip(self):
        geometry = BlockGeometry(3, 4, 5)
        for slot in (0, 7, 33, geometry.capacity - 1):
            coord = slot_to_coordinate(slot, geometry)
            assert coordinate_to_slot(coord, geometry) == slot

    def test_out_of_range_rejected(self):
        geometry = BlockGeometry(2, 2, 2)
        with pytest.raises(ValidationError):
            slot_to_coordinate(geometry.capacity, geometry)
        with pytest.raises(ValidationError):
            coordinate_to_slot(MRCoordinate(5, 0, 0), geometry)

    def test_bank_slot_helpers(self):
        geometry = BlockGeometry(2, 3, 4)
        slots = slots_of_bank(4, geometry)
        assert list(slots) == [16, 17, 18, 19]
        assert bank_of_slot(17, geometry) == 4
        with pytest.raises(ValidationError):
            slots_of_bank(geometry.num_banks, geometry)


class TestMapping:
    def test_every_conv_and_fc_weight_is_mapped(self, tiny_accelerator_config):
        model = build_model("cnn_mnist", profile="scaled", rng=0)
        mapping = WeightMapping(model, tiny_accelerator_config)
        conv_total = sum(p.size for p in model.parameters() if p.kind == "conv")
        fc_total = sum(p.size for p in model.parameters() if p.kind == "fc")
        assert mapping.total_weights("conv") == conv_total
        assert mapping.total_weights("fc") == fc_total

    def test_offsets_are_contiguous_per_block(self, tiny_accelerator_config):
        model = build_model("cnn_mnist", profile="scaled", rng=0)
        mapping = WeightMapping(model, tiny_accelerator_config)
        for block in ("conv", "fc"):
            offset = 0
            for mapped in mapping.parameters_in_block(block):
                assert mapped.offset == offset
                offset += mapped.size

    def test_mapping_rounds_reflect_capacity(self, tiny_accelerator_config):
        model = build_model("cnn_mnist", profile="scaled", rng=0)
        mapping = WeightMapping(model, tiny_accelerator_config)
        geometry = tiny_accelerator_config.fc_block
        expected_rounds = int(np.ceil(mapping.total_weights("fc") / geometry.capacity))
        assert mapping.mapping_rounds("fc") == expected_rounds
        assert 0 < mapping.utilization("fc") <= 1.0

    def test_slots_stay_within_capacity(self, tiny_accelerator_config):
        model = build_model("cnn_mnist", profile="scaled", rng=0)
        mapping = WeightMapping(model, tiny_accelerator_config)
        for mapped in mapping.parameters:
            slots = mapping.slots_for(mapped)
            capacity = mapping.block_geometry(mapped.kind).capacity
            assert slots.min() >= 0 and slots.max() < capacity
            banks = mapping.banks_for(mapped)
            assert banks.max() < mapping.block_geometry(mapped.kind).num_banks

    def test_weights_on_slot_inverse_of_slots_for(self, tiny_accelerator_config):
        model = build_model("cnn_mnist", profile="scaled", rng=0)
        mapping = WeightMapping(model, tiny_accelerator_config)
        slot = 3
        hosted = mapping.weights_on_slot("conv", slot)
        assert hosted, "slot 3 of the conv block should host at least one weight"
        for name, index in hosted:
            mapped = next(m for m in mapping.parameters if m.name == name)
            assert mapping.slots_for(mapped)[index] == slot

    def test_normalize_denormalize_roundtrip(self, tiny_accelerator_config):
        model = build_model("cnn_mnist", profile="scaled", rng=0)
        mapping = WeightMapping(model, tiny_accelerator_config)
        mapped = mapping.parameters[0]
        values = mapping.parameter_array(mapped.name).data.reshape(-1)
        magnitudes = mapping.normalize(mapped, values)
        signs = np.sign(values)
        signs[signs == 0] = 1
        restored = mapping.denormalize(mapped, magnitudes, signs)
        np.testing.assert_allclose(restored, values, atol=1e-6)

    def test_describe_contains_inventory(self, tiny_accelerator_config):
        model = build_model("cnn_mnist", profile="scaled", rng=0)
        description = WeightMapping(model, tiny_accelerator_config).describe()
        assert description["conv_weights"] > 0
        assert description["fc_rounds"] >= 1


class TestInferenceEngine:
    def test_clean_accuracy_close_to_software_baseline(
        self, trained_mnist_model, mnist_split, scaled_accelerator_config
    ):
        from repro.nn import evaluate_accuracy

        software = evaluate_accuracy(trained_mnist_model, mnist_split.test)
        engine = AttackedInferenceEngine(trained_mnist_model, scaled_accelerator_config)
        accelerator = engine.clean_accuracy(mnist_split.test)
        assert abs(software - accelerator) < 0.05

    def test_attack_restores_weights_after_evaluation(
        self, trained_mnist_model, mnist_split, scaled_accelerator_config
    ):
        engine = AttackedInferenceEngine(trained_mnist_model, scaled_accelerator_config)
        before = {k: v.copy() for k, v in trained_mnist_model.state_dict().items()}
        outcome = ActuationAttack(AttackSpec("actuation", "both", 0.1)).sample(
            scaled_accelerator_config, seed=0
        )
        engine.accuracy_under_attack(mnist_split.test, outcome)
        after = trained_mnist_model.state_dict()
        for key in before:
            np.testing.assert_array_equal(before[key], after[key])

    def test_attack_degrades_accuracy(
        self, trained_mnist_model, mnist_split, scaled_accelerator_config
    ):
        engine = AttackedInferenceEngine(trained_mnist_model, scaled_accelerator_config)
        clean = engine.clean_accuracy(mnist_split.test)
        outcome = ActuationAttack(AttackSpec("actuation", "both", 0.1)).sample(
            scaled_accelerator_config, seed=1
        )
        attacked = engine.accuracy_under_attack(mnist_split.test, outcome)
        assert attacked <= clean
        assert engine.weight_corruption_fraction(outcome) == pytest.approx(0.1, abs=0.02)

    def test_facade_deployment_report(self, trained_mnist_model, scaled_accelerator_config):
        accelerator = ONNAccelerator(scaled_accelerator_config)
        report = accelerator.deployment_report(trained_mnist_model)
        assert report.conv_weights > 0
        assert report.fc_rounds >= 1
        assert "conv_weights" in report.as_dict()


class TestPowerModel:
    def test_report_is_positive_and_fc_dominates(self):
        model = PowerModel(AcceleratorConfig.paper_config())
        report = model.report()
        assert report.total_w > 0
        # The FC block has far more MRs, DACs and banks than the CONV block.
        assert report.fc.total_w > report.conv.total_w
        assert report.vdp_latency_s > 0

    def test_tuning_energy_comparison_prefers_eo_for_small_shifts(self):
        model = PowerModel(AcceleratorConfig.paper_config())
        comparison = model.tuning_energy_comparison(0.2)
        assert comparison["eo_energy_j"] < comparison["to_energy_j"]
        large = model.tuning_energy_comparison(5.0)
        assert "eo_energy_j" not in large

    def test_block_breakdown_fields(self):
        breakdown = PowerModel(AcceleratorConfig.scaled_config()).block_breakdown("conv")
        data = breakdown.as_dict()
        assert data["total_w"] == pytest.approx(
            sum(value for key, value in data.items() if key.endswith("_w") and key != "total_w")
        )


class TestSignalLevelSimulator:
    def test_matches_reference_dot_product(self, rng):
        sim = SignalLevelSimulator(6)
        a = rng.random(6)
        w = rng.random(6)
        assert sim.dot(a, w) == pytest.approx(float(a @ w), abs=0.1)

    def test_functional_model_agrees_with_optical_model_under_attack(self, rng):
        sim = SignalLevelSimulator(8)
        a = rng.random(8)
        w = rng.random(8)
        optical = sim.dot(a, w, attacked_weight_mrs=[1, 4])
        functional = sim.functional_equivalent_dot(a, w, attacked_weight_mrs=[1, 4])
        assert optical == pytest.approx(functional, abs=0.15)

    def test_functional_model_agrees_under_hotspot(self, rng):
        sim = SignalLevelSimulator(8)
        a = rng.random(8)
        w = rng.random(8)
        optical = sim.dot(a, w, bank_delta_t_k=15.0)
        functional = sim.functional_equivalent_dot(a, w, bank_delta_t_k=15.0)
        assert optical == pytest.approx(functional, abs=0.3)

    def test_matvec_shape_and_reference(self, rng):
        sim = SignalLevelSimulator(5)
        matrix = rng.random((3, 5))
        vector = rng.random(5)
        out = sim.matvec(matrix, vector)
        np.testing.assert_allclose(out, matrix @ vector, atol=0.15)

    def test_operand_validation(self, rng):
        sim = SignalLevelSimulator(4)
        with pytest.raises(ValidationError):
            sim.dot(rng.random(3), rng.random(4))
        with pytest.raises(ValidationError):
            sim.matvec(rng.random((2, 3)), rng.random(3))
