"""Compute-backend registry, fast-vs-reference agreement and cache keying.

The reference backend *is* the historical code path, so reference-mode runs
must stay bit-identical to pre-backend behaviour (the rest of the suite
enforces that implicitly).  The fast backend is tolerance-tested against it:
kernel-level properties (hypothesis), layer forwards, full training runs and
attacked inference across attack kinds.  The engine-facing contract — the
backend selection landing in run provenance and changing the result-cache
fingerprint — is regression-tested at the bottom.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.nn import functional as F
from repro.nn.backend import (
    ComputeBackend,
    active_backend,
    backend_provenance,
    cache_environment,
    get_backend,
    register_backend,
    registered_backends,
    resolve_backend_name,
    resolve_threads,
    use_backend,
)

_settings = settings(max_examples=40, deadline=None)


# ---------------------------------------------------------------- registry
class TestRegistry:
    def test_both_backends_registered(self):
        assert registered_backends() == ("fast", "reference")

    def test_default_is_reference(self, monkeypatch):
        monkeypatch.delenv("REPRO_NN_BACKEND", raising=False)
        assert resolve_backend_name() == "reference"
        assert active_backend().name == "reference"

    def test_unknown_backend_raises(self):
        with pytest.raises(ValueError, match="unknown compute backend"):
            get_backend("nope")
        with pytest.raises(ValueError):
            with use_backend("nope"):
                pass  # pragma: no cover — raises before entering

    def test_env_selection(self, monkeypatch):
        monkeypatch.setenv("REPRO_NN_BACKEND", "fast")
        assert resolve_backend_name() == "fast"
        assert active_backend().name == "fast"

    def test_use_backend_nests_and_restores(self, monkeypatch):
        monkeypatch.delenv("REPRO_NN_BACKEND", raising=False)
        with use_backend("fast"):
            assert active_backend().name == "fast"
            with use_backend("reference"):
                assert active_backend().name == "reference"
            assert active_backend().name == "fast"
        assert active_backend().name == "reference"

    def test_context_overrides_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_NN_BACKEND", "fast")
        with use_backend("reference"):
            assert active_backend().name == "reference"

    def test_register_backend_rejects_collisions(self):
        with pytest.raises(ValueError, match="already registered"):

            @register_backend
            class Duplicate(ComputeBackend):  # noqa: F841
                name = "reference"

    def test_resolve_threads_precedence(self, monkeypatch):
        monkeypatch.setenv("REPRO_NN_THREADS", "3")
        assert resolve_threads() == 3
        assert resolve_threads(5) == 5
        with use_backend(None, 2):
            assert resolve_threads() == 2
        monkeypatch.delenv("REPRO_NN_THREADS")
        assert resolve_threads() >= 1

    def test_describe_reports_identity(self):
        info = get_backend("fast").describe()
        assert info["backend"] == "fast"
        assert "numba" in info


# ---------------------------------------------------- kernel-level properties
class TestKernelProperties:
    @_settings
    @given(
        batch=st.integers(1, 3),
        channels=st.integers(1, 4),
        size=st.integers(4, 12),
        kernel=st.integers(1, 3),
        stride=st.integers(1, 2),
        padding=st.integers(0, 1),
    )
    def test_im2col_matches_reference(
        self, batch, channels, size, kernel, stride, padding
    ):
        rng = np.random.default_rng(batch * 100 + size)
        x = rng.normal(size=(batch, channels, size, size)).astype(np.float32)
        ref, oh, ow = F.im2col(x, kernel, kernel, stride, padding)
        fast = get_backend("fast")
        for transient in (False, True):
            cols, foh, fow = fast.im2col(
                x, kernel, kernel, stride, padding, transient=transient
            )
            assert (foh, fow) == (oh, ow)
            np.testing.assert_array_equal(cols, ref)

    @_settings
    @given(
        lead=st.integers(2, 6),
        rows=st.integers(1, 16),
        inner=st.integers(1, 16),
        cols=st.integers(1, 16),
    )
    def test_stacked_matmul_matches_numpy(self, lead, rows, inner, cols):
        rng = np.random.default_rng(lead * 1000 + rows)
        a = rng.normal(size=(lead, rows, inner)).astype(np.float32)
        b = rng.normal(size=(lead, inner, cols)).astype(np.float32)
        fast = get_backend("fast")
        np.testing.assert_allclose(
            fast.stacked_matmul(a, b), np.matmul(a, b), rtol=1e-5, atol=1e-5
        )
        # Broadcast slabs (fused single-GEMM paths).
        np.testing.assert_allclose(
            fast.stacked_matmul(a, b[:1]), np.matmul(a, b[:1]), rtol=1e-5, atol=1e-5
        )
        shared = fast.stacked_matmul(a[:1], b)
        np.testing.assert_allclose(shared, np.matmul(a[:1], b), rtol=1e-5, atol=1e-5)
        assert shared.flags.c_contiguous

    def test_threaded_stacked_matmul_above_work_floor(self):
        fast = get_backend("fast")
        rng = np.random.default_rng(7)
        # 6 * 128 * 64 * 64 = 3.1M elements of work >= MIN_THREADED_WORK.
        a = rng.normal(size=(6, 128, 64)).astype(np.float32)
        b = rng.normal(size=(6, 64, 64)).astype(np.float32)
        assert 6 * 128 * 64 * 64 >= fast.MIN_THREADED_WORK
        with use_backend("fast", 2):
            out = active_backend().stacked_matmul(a, b)
        # Chunked per-slab np.matmul is bit-identical to the one-shot form.
        np.testing.assert_array_equal(out, np.matmul(a, b))

    def test_window_max_matches_reference(self):
        rng = np.random.default_rng(3)
        x = rng.normal(size=(2, 3, 8, 8)).astype(np.float32)
        np.testing.assert_array_equal(
            get_backend("fast").window_max(x, 2),
            get_backend("reference").window_max(x, 2),
        )

    def test_stacked_moments_within_tolerance(self):
        rng = np.random.default_rng(4)
        x = rng.normal(size=(5, 8, 3, 6, 6)).astype(np.float32)
        ref_mean, ref_var = get_backend("reference").stacked_moments(x)
        fast_mean, fast_var = get_backend("fast").stacked_moments(x)
        np.testing.assert_allclose(fast_mean, ref_mean, rtol=1e-5, atol=1e-6)
        np.testing.assert_allclose(fast_var, ref_var, rtol=1e-4, atol=1e-6)

    def test_scale_rows_matches_reference(self):
        rng = np.random.default_rng(5)
        for backend in ("reference", "fast"):
            magnitudes = rng.normal(size=(6, 9)).astype(np.float64)
            expected = magnitudes.copy()
            scales = rng.uniform(0.5, 1.5, size=(2, 9))
            expected[[1, 4]] *= scales
            get_backend(backend).scale_rows(magnitudes, [1, 4], scales)
            np.testing.assert_array_equal(magnitudes, expected)

    def test_transient_workspace_is_reused(self):
        fast = get_backend("fast")
        fast.release_workspaces()
        x = np.random.default_rng(0).normal(size=(2, 3, 10, 10)).astype(np.float32)
        first, _, _ = fast.im2col(x, 3, 3, 1, 0, transient=True)
        second, _, _ = fast.im2col(x, 3, 3, 1, 0, transient=True)
        assert np.shares_memory(first, second)
        # Non-transient patch matrices must never alias the workspace.
        cached, _, _ = fast.im2col(x, 3, 3, 1, 0, transient=False)
        third, _, _ = fast.im2col(x, 3, 3, 1, 0, transient=True)
        assert not np.shares_memory(cached, third)
        fast.release_workspaces()


# ------------------------------------------------------- satellite regressions
class TestFunctionalSatellites:
    def test_sigmoid_preserves_float_dtype(self):
        x = np.linspace(-30, 30, 61).astype(np.float32)
        out = F.sigmoid(x)
        assert out.dtype == np.float32
        expected = 1.0 / (1.0 + np.exp(-x.astype(np.float64)))
        np.testing.assert_allclose(out, expected, rtol=1e-5, atol=1e-6)
        assert F.sigmoid(np.array([0, 1, 2])).dtype == np.float64

    def test_smoothed_targets_use_canonical_one_hot(self):
        from repro.nn.losses import _smoothed_targets

        labels = np.array([0, 2, 1])
        np.testing.assert_array_equal(
            _smoothed_targets((3, 3), labels, 0.0), F.one_hot(labels, 3)
        )
        smoothed = _smoothed_targets((3, 4), labels, 0.1)
        np.testing.assert_allclose(smoothed.sum(axis=1), 1.0, rtol=1e-6)
        assert smoothed.min() > 0


# --------------------------------------------------- model-level equivalence
def _train_small_model(backend: str, split, epochs: int = 1):
    from repro.nn.models.registry import build_model
    from repro.nn.training import Trainer, TrainingConfig

    model = build_model("cnn_mnist", profile="scaled", rng=0)
    config = TrainingConfig(epochs=epochs, batch_size=32, lr=2e-3, seed=0)
    Trainer(model, config, backend=backend).fit(split.train)
    return model


class TestModelEquivalence:
    def test_forward_agreement(self, trained_mnist_model, mnist_split):
        from repro.datasets import DataLoader

        images, _ = next(iter(DataLoader(mnist_split.test, batch_size=32)))
        trained_mnist_model.eval()
        with use_backend("reference"):
            ref = trained_mnist_model(images)
        with use_backend("fast"):
            fast = trained_mnist_model(images)
        np.testing.assert_allclose(fast, ref, rtol=1e-5, atol=1e-5)

    def test_training_agreement(self, mnist_split):
        ref = _train_small_model("reference", mnist_split)
        fast = _train_small_model("fast", mnist_split)
        state_ref, state_fast = ref.full_state_dict(), fast.full_state_dict()
        for key in state_ref:
            np.testing.assert_allclose(
                state_fast[key], state_ref[key], rtol=1e-4, atol=5e-4,
                err_msg=f"backend weight drift in {key}",
            )

    def test_stacked_training_agreement(self, mnist_split):
        from repro.mitigation import (
            L2Config,
            NoiseAwareConfig,
            VariantSpec,
            train_variant_grid_stacked,
        )
        from repro.nn.training import TrainingConfig

        config = TrainingConfig(epochs=1, batch_size=32, lr=2e-3, seed=0)
        variants = (
            VariantSpec(name="Original"),
            VariantSpec(name="l2+n2", l2=L2Config(), noise=NoiseAwareConfig(std=0.2)),
        )
        results = {}
        for backend in ("reference", "fast"):
            with use_backend(backend):
                results[backend] = train_variant_grid_stacked(
                    "cnn_mnist", mnist_split, config, variants=list(variants)
                )
        for a, b in zip(results["reference"], results["fast"]):
            assert abs(a.baseline_accuracy - b.baseline_accuracy) <= 0.02
            state_a, state_b = a.model.full_state_dict(), b.model.full_state_dict()
            for key in state_a:
                np.testing.assert_allclose(
                    state_b[key], state_a[key], rtol=1e-4, atol=5e-4
                )

    def test_attacked_inference_agreement_across_kinds(
        self, trained_mnist_model, mnist_split, scaled_accelerator_config
    ):
        """Stacked attacked inference matches across backends for both paper kinds."""
        from repro.accelerator.inference import AttackedInferenceEngine
        from repro.attacks.hotspot import HotspotAttackConfig
        from repro.attacks.scenario import generate_scenarios, sample_outcome

        scenarios = generate_scenarios(
            kinds=("actuation", "hotspot"),
            blocks=("both",),
            fractions=(0.05,),
            num_placements=2,
            master_seed=0,
        )
        outcomes = [
            sample_outcome(s, scaled_accelerator_config, HotspotAttackConfig())
            for s in scenarios
        ]
        accuracies = {}
        for backend in ("reference", "fast"):
            engine = AttackedInferenceEngine(
                trained_mnist_model,
                config=scaled_accelerator_config,
                backend=backend,
            )
            accuracies[backend] = engine.accuracy_under_attacks(
                mnist_split.test, outcomes
            )
        np.testing.assert_allclose(
            accuracies["fast"], accuracies["reference"], atol=0.02
        )


# ------------------------------------------------- engine provenance + cache
def _probe_descriptor():
    from repro.analysis.experiments import ExperimentDescriptor, _backend_aware

    def runner(seed: int = 0) -> dict:
        return {
            "backend": active_backend().name,
            "threads": resolve_threads(),
        }

    return ExperimentDescriptor(
        experiment_id="_backend_probe",
        title="backend probe",
        paper_reference="tests",
        modules=("repro.nn.backend",),
        bench_target="benchmarks/bench_backends.py",
        runner=_backend_aware(runner),
        default_params={"seed": 0, "nn_backend": "", "nn_threads": 0},
    )


class TestEngineIntegration:
    def test_execute_run_applies_and_records_backend(self, monkeypatch):
        from repro.analysis.experiments import EXPERIMENTS
        from repro.engine.executor import execute_run
        from repro.engine.spec import RunSpec

        monkeypatch.setitem(EXPERIMENTS, "_backend_probe", _probe_descriptor())
        spec = RunSpec(
            experiment_id="_backend_probe",
            params={"nn_backend": "fast", "nn_threads": 2},
        )
        record = execute_run(spec)
        assert record.ok, record.error
        assert record.payload["backend"] == "fast"
        assert record.payload["threads"] == 2
        assert record.provenance["nn_backend"] == "fast"
        assert record.provenance["nn_threads"] == 2

    def test_execute_run_defaults_to_reference(self, monkeypatch):
        from repro.analysis.experiments import EXPERIMENTS
        from repro.engine.executor import execute_run
        from repro.engine.spec import RunSpec

        monkeypatch.delenv("REPRO_NN_BACKEND", raising=False)
        monkeypatch.setitem(EXPERIMENTS, "_backend_probe", _probe_descriptor())
        record = execute_run(RunSpec(experiment_id="_backend_probe"))
        assert record.ok, record.error
        assert record.payload["backend"] == "reference"
        assert record.provenance["nn_backend"] == "reference"

    def test_cache_environment_empty_by_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_NN_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_NN_THREADS", raising=False)
        assert cache_environment() == {}

    def test_fingerprint_changes_with_backend_env(self, monkeypatch):
        from repro.engine.spec import RunSpec, spec_fingerprint

        spec = RunSpec(experiment_id="fig7_point")
        monkeypatch.delenv("REPRO_NN_BACKEND", raising=False)
        monkeypatch.delenv("REPRO_NN_THREADS", raising=False)
        default = spec_fingerprint(spec, "1.0")
        # The default environment contributes nothing, preserving pre-backend
        # fingerprints (and therefore existing caches).
        assert default == spec_fingerprint(spec, "1.0", environment={})
        monkeypatch.setenv("REPRO_NN_BACKEND", "fast")
        assert spec_fingerprint(spec, "1.0") != default
        monkeypatch.delenv("REPRO_NN_BACKEND")
        monkeypatch.setenv("REPRO_NN_THREADS", "4")
        assert spec_fingerprint(spec, "1.0") != default

    def test_fingerprint_changes_with_backend_param(self):
        from repro.engine.spec import RunSpec, spec_fingerprint

        base = RunSpec(experiment_id="fig7_point", params={"nn_backend": ""})
        fast = RunSpec(experiment_id="fig7_point", params={"nn_backend": "fast"})
        assert spec_fingerprint(base, "1.0") != spec_fingerprint(fast, "1.0")

    def test_backend_provenance_resolves_ambient(self, monkeypatch):
        monkeypatch.delenv("REPRO_NN_BACKEND", raising=False)
        assert backend_provenance(None, None)["nn_backend"] == "reference"
        assert backend_provenance("fast", 3) == {
            "nn_backend": "fast",
            "nn_threads": 3,
        }

    def test_experiment_registry_accepts_backend_params(self):
        from repro.analysis.experiments import EXPERIMENTS

        for experiment_id in (
            "fig7", "fig7_point", "fig7_grid", "fig7_candidate",
            "fig7_adversarial", "fig8", "fig8_variant", "fig9",
            "ablation_mitigation",
        ):
            params = EXPERIMENTS[experiment_id].default_params
            assert params["nn_backend"] == ""
            assert params["nn_threads"] == 0

    def test_cli_rejects_unknown_backend(self, capsys):
        from repro.engine.cli import main

        assert main(["bench", "--backend", "bogus"]) == 2
        assert "unknown backend" in capsys.readouterr().err

    def test_cli_exports_backend_env(self, monkeypatch):
        from repro.engine import cli

        # setenv (not delenv) so teardown restores even though the CLI code
        # writes os.environ directly.
        monkeypatch.setenv("REPRO_NN_BACKEND", "")
        monkeypatch.setenv("REPRO_NN_THREADS", "")

        class Args:
            backend = "fast"
            threads = 2

        assert cli._apply_backend_selection(Args()) == 0
        import os

        assert os.environ["REPRO_NN_BACKEND"] == "fast"
        assert os.environ["REPRO_NN_THREADS"] == "2"

    def test_stacked_state_backend_hook(self, trained_mnist_model):
        from repro.nn.ensemble import stack_state_dicts, stacked_state

        state = trained_mnist_model.state_dict()
        stacked = stack_state_dicts([state, state])
        with stacked_state(trained_mnist_model, stacked, backend="fast"):
            assert active_backend().name == "fast"
        assert active_backend().name == "reference"
