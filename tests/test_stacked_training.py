"""Stacked variant-grid training: per-layer backward checks, serial-vs-stacked
equivalence, batch-order plumbing, weight-decay/L2 identity and the trained-
model checkpoint cache."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_dataset, train_test_split
from repro.engine.checkpoints import CheckpointCache
from repro.mitigation import (
    L2Config,
    NoiseAwareConfig,
    VariantSpec,
    train_variant_grid,
    train_variant_grid_stacked,
    variant_training_config,
)
from repro.nn import (
    SGD,
    AvgPool2D,
    BatchNorm2D,
    Conv2D,
    GlobalAvgPool2D,
    Linear,
    MaxPool2D,
    Sequential,
    StackedCrossEntropyLoss,
    StackedTrainer,
    Trainer,
    TrainingConfig,
)
from repro.nn.ensemble import stack_state_dicts
from repro.nn.losses import CrossEntropyLoss, l2_penalty
from repro.nn.module import Module


VARIANTS = 3


def load_trainable_stack(module: Module, rng: np.random.Generator) -> None:
    """Attach a trainable stacked state with random per-variant slabs."""
    stacked = {
        name: np.stack(
            [
                param.data + rng.normal(0, 0.1, size=param.data.shape)
                for _ in range(VARIANTS)
            ]
        ).astype(np.float32)
        for name, param in module.named_parameters()
    }
    module.load_stacked_state(stacked, trainable=True)


def stacked_param_gradient_check(
    module: Module, x: np.ndarray, param, eps: float = 1e-2, atol: float = 5e-3
) -> None:
    """Finite-difference check of one parameter's per-variant gradient slabs.

    The loss is ``sum`` over the full stacked output, so each variant's slab
    gradient must match the finite difference of perturbing that slab only.
    """
    module.train()
    out = module(x)
    module.zero_grad()
    module.backward(np.ones_like(out))
    analytic = param.stacked_grad.copy()

    def loss() -> float:
        return float(np.asarray(module(x), dtype=np.float64).sum())

    rng = np.random.default_rng(0)
    for variant in range(VARIANTS):
        flat = param.stacked[variant].reshape(-1)
        for flat_index in rng.choice(flat.size, size=min(4, flat.size), replace=False):
            original = float(flat[flat_index])
            flat[flat_index] = original + eps
            up = loss()
            flat[flat_index] = original - eps
            down = loss()
            flat[flat_index] = original
            numeric = (up - down) / (2 * eps)
            assert abs(numeric - analytic[variant].reshape(-1)[flat_index]) < atol


def stacked_input_gradient_check(
    module: Module, x: np.ndarray, eps: float = 1e-2, atol: float = 5e-3
) -> None:
    """Finite-difference check of the per-variant input gradient."""
    module.train()
    out = module(x)
    grad_in = module.backward(np.ones_like(out))
    assert grad_in.shape == x.shape

    def loss() -> float:
        return float(np.asarray(module(x), dtype=np.float64).sum())

    rng = np.random.default_rng(1)
    flat = x.reshape(-1)
    for flat_index in rng.choice(flat.size, size=6, replace=False):
        original = float(flat[flat_index])
        flat[flat_index] = original + eps
        up = loss()
        flat[flat_index] = original - eps
        down = loss()
        flat[flat_index] = original
        numeric = (up - down) / (2 * eps)
        assert abs(numeric - grad_in.reshape(-1)[flat_index]) < atol


@pytest.fixture
def rng():
    return np.random.default_rng(42)


class TestStackedBackwardFiniteDifference:
    def test_linear_weight_bias_and_input(self, rng):
        layer = Linear(6, 4, rng=rng)
        load_trainable_stack(layer, rng)
        x = rng.normal(size=(VARIANTS, 5, 6)).astype(np.float32)
        stacked_param_gradient_check(layer, x, layer.weight)
        stacked_param_gradient_check(layer, x, layer.bias)
        stacked_input_gradient_check(layer, x)

    def test_linear_shared_input_broadcasts(self, rng):
        layer = Linear(6, 3, rng=rng)
        load_trainable_stack(layer, rng)
        x = rng.normal(size=(5, 6)).astype(np.float32)
        out = layer(x)
        assert out.shape == (VARIANTS, 5, 3)
        stacked_param_gradient_check(layer, x, layer.weight)

    def test_linear_shared_input_skips_input_gradient(self, rng):
        layer = Linear(6, 3, rng=rng)
        load_trainable_stack(layer, rng)
        out = layer(rng.normal(size=(5, 6)).astype(np.float32))
        assert layer.backward(np.ones_like(out)) is None

    def test_mlp_with_flatten_first_trains_stacked(self, rng):
        """Flatten -> Linear on a raw 4-D input: the shared-input Linear
        skips its input gradient and Sequential stops the backward there."""
        from repro.nn import Flatten, ReLU
        from repro.nn.losses import StackedCrossEntropyLoss

        def build():
            return Sequential(
                Flatten(), Linear(32, 8, rng=0), ReLU(), Linear(8, 3, rng=1)
            )

        template = build()
        template.load_stacked_state(
            stack_state_dicts([build().state_dict() for _ in range(VARIANTS)]),
            trainable=True,
        )
        template.train()
        x = rng.random((5, 2, 4, 4)).astype(np.float32)
        labels = rng.integers(0, 3, size=5)
        loss = StackedCrossEntropyLoss()
        loss(template(x), labels)
        assert template.backward(loss.backward()) is None
        first_linear = template.layers[1]
        assert float(np.abs(first_linear.weight.stacked_grad).max()) > 0

    def test_conv_weight_grads_shared_input(self, rng):
        layer = Conv2D(2, 3, kernel_size=3, padding=1, rng=rng)
        load_trainable_stack(layer, rng)
        x = rng.normal(size=(4, 2, 6, 6)).astype(np.float32)
        stacked_param_gradient_check(layer, x, layer.weight)
        stacked_param_gradient_check(layer, x, layer.bias)

    def test_conv_shared_input_skips_input_gradient(self, rng):
        layer = Conv2D(2, 3, kernel_size=3, rng=rng)
        load_trainable_stack(layer, rng)
        x = rng.normal(size=(4, 2, 6, 6)).astype(np.float32)
        out = layer(x)
        assert layer.backward(np.ones_like(out)) is None

    def test_conv_stacked_input_and_gradient(self, rng):
        layer = Conv2D(2, 3, kernel_size=3, padding=1, stride=2, rng=rng)
        load_trainable_stack(layer, rng)
        x = rng.normal(size=(VARIANTS, 4, 2, 6, 6)).astype(np.float32)
        stacked_param_gradient_check(layer, x, layer.weight)
        stacked_input_gradient_check(layer, x)

    def test_batchnorm_gamma_beta_and_input(self, rng):
        layer = BatchNorm2D(3)
        load_trainable_stack(layer, rng)
        x = rng.normal(size=(VARIANTS, 5, 3, 4, 4)).astype(np.float32)
        stacked_param_gradient_check(layer, x, layer.gamma, atol=2e-2)
        stacked_param_gradient_check(layer, x, layer.beta, atol=2e-2)
        stacked_input_gradient_check(layer, x, atol=2e-2)

    def test_batchnorm_updates_per_variant_running_stats(self, rng):
        layer = BatchNorm2D(3)
        load_trainable_stack(layer, rng)
        x = rng.normal(size=(VARIANTS, 5, 3, 4, 4)).astype(np.float32)
        layer.train()
        layer(x)
        assert layer.stacked_running_mean.shape == (VARIANTS, 3)
        # Variants see different activations, so their statistics differ.
        assert not np.allclose(
            layer.stacked_running_mean[0], layer.stacked_running_mean[1]
        )

    def test_maxpool_input_gradient(self, rng):
        layer = MaxPool2D(2)
        layer.train()
        x = rng.normal(size=(VARIANTS, 3, 2, 4, 4)).astype(np.float32)
        stacked_input_gradient_check(layer, x)

    def test_maxpool_overlapping_geometry_falls_back(self, rng):
        layer = MaxPool2D(3, stride=2, padding=1)
        layer.train()
        x = rng.normal(size=(VARIANTS, 2, 2, 6, 6)).astype(np.float32)
        stacked_input_gradient_check(layer, x)

    def test_avgpool_and_global_avgpool_input_gradients(self, rng):
        x = rng.normal(size=(VARIANTS, 3, 2, 4, 4)).astype(np.float32)
        for layer in (AvgPool2D(2), GlobalAvgPool2D()):
            layer.train()
            stacked_input_gradient_check(layer, x)


class TestMaxPoolWindowsBitIdentity:
    def test_matches_im2col_path_with_ties(self):
        """The window path (values + argmax tie-breaks) is bit-identical."""
        rng = np.random.default_rng(0)
        x = rng.random((6, 3, 8, 8)).astype(np.float32)
        x[x < 0.5] = 0.0  # post-ReLU-style ties inside windows

        reference = MaxPool2D(2)
        reference.train()
        out_ref = reference.forward(x)
        grad = rng.random(out_ref.shape).astype(np.float32)
        grad_ref = reference.backward(grad)

        windows = MaxPool2D(2)
        windows.train()
        out_win = windows._forward_windows_train(x)
        grad_win = windows._backward_windows(grad)
        assert np.array_equal(out_ref, out_win)
        assert np.array_equal(grad_ref, grad_win)
        assert out_win.flags["C_CONTIGUOUS"]


class TestStackedLoss:
    def test_matches_serial_loss_per_variant(self, rng):
        logits = rng.normal(size=(VARIANTS, 8, 5)).astype(np.float32)
        labels = rng.integers(0, 5, size=8)
        stacked = StackedCrossEntropyLoss(label_smoothing=0.1)
        serial = CrossEntropyLoss(label_smoothing=0.1)
        losses = stacked(logits, labels)
        grads = stacked.backward()
        assert losses.shape == (VARIANTS,)
        for variant in range(VARIANTS):
            assert losses[variant] == serial(logits[variant], labels)
            assert np.array_equal(grads[variant], serial.backward())

    def test_rejects_2d_logits(self, rng):
        with pytest.raises(ValueError):
            StackedCrossEntropyLoss()(np.zeros((4, 3), dtype=np.float32), np.zeros(4, dtype=np.int64))


class TestWeightDecayEqualsL2Penalty:
    """SGD weight decay is the exact gradient of the paper's L2 penalty."""

    def _models(self, rng):
        a = Linear(6, 4, rng=np.random.default_rng(3))
        b = Linear(6, 4, rng=np.random.default_rng(3))
        b.load_state_dict(a.state_dict())
        return a, b

    def test_sgd_decay_step_equals_explicit_penalty_gradient(self, rng):
        lam = 0.37
        a, b = self._models(rng)
        grad = rng.normal(size=a.weight.shape).astype(np.float32)
        a.weight.grad += grad
        b.weight.grad += grad
        # a: optimizer-applied decay; b: the explicit penalty gradient
        # lam * w added to the task gradient by hand.
        b.weight.grad += np.float32(lam) * b.weight.data
        SGD([a.weight], lr=0.1, weight_decay=lam).step()
        SGD([b.weight], lr=0.1, weight_decay=0.0).step()
        assert np.array_equal(a.weight.data, b.weight.data)

    @pytest.mark.parametrize("momentum", [0.0, 0.9])
    def test_decay_equivalence_holds_across_steps(self, rng, momentum):
        lam = 5e-2
        a, b = self._models(rng)
        opt_a = SGD([a.weight], lr=0.05, momentum=momentum, weight_decay=lam)
        opt_b = SGD([b.weight], lr=0.05, momentum=momentum, weight_decay=0.0)
        for _ in range(4):
            grad = rng.normal(size=a.weight.shape).astype(np.float32)
            opt_a.zero_grad()
            opt_b.zero_grad()
            a.weight.grad += grad
            b.weight.grad += grad + np.float32(lam) * b.weight.data
            opt_a.step()
            opt_b.step()
            assert np.array_equal(a.weight.data, b.weight.data)

    def test_penalty_gradient_matches_finite_difference(self, rng):
        """d/dw l2_penalty == (lambda/m) * w — the decay term scaled by m."""
        lam, samples = 0.25, 50
        layer = Linear(5, 3, rng=np.random.default_rng(1))
        params = [layer.weight]
        eps = 1e-4
        flat = layer.weight.data.reshape(-1)
        for flat_index in rng.choice(flat.size, size=5, replace=False):
            original = float(flat[flat_index])
            flat[flat_index] = original + eps
            up = l2_penalty(params, lam, num_samples=samples)
            flat[flat_index] = original - eps
            down = l2_penalty(params, lam, num_samples=samples)
            flat[flat_index] = original
            numeric = (up - down) / (2 * eps)
            assert abs(numeric - lam / samples * original) < 1e-6

    def test_stacked_per_variant_decay_matches_serial(self, rng):
        decays = np.array([0.0, 0.1, 0.3])
        template = Linear(4, 3, rng=np.random.default_rng(5))
        serial_layers = [Linear(4, 3, rng=np.random.default_rng(5)) for _ in decays]
        template.load_stacked_state(
            stack_state_dicts([layer.state_dict() for layer in serial_layers]),
            trainable=True,
        )
        grad = rng.normal(size=template.weight.shape).astype(np.float32)
        template.weight.stacked_grad += grad[None]
        template.bias.stacked_grad += np.zeros_like(template.bias.stacked)
        SGD(template.parameters(), lr=0.1, weight_decay=decays.astype(np.float32)).step()
        for index, (decay, layer) in enumerate(zip(decays, serial_layers)):
            layer.weight.grad += grad
            SGD(layer.parameters(), lr=0.1, weight_decay=float(decay)).step()
            assert np.array_equal(template.weight.stacked[index], layer.weight.data)


class TestBatchOrderPlumbing:
    """All variants of a grid must consume the identical batch order."""

    def _label_sequence(self, trainer: Trainer | StackedTrainer, dataset) -> list:
        return [labels.tolist() for _, labels in trainer.make_loader(dataset)]

    def test_shared_shuffle_seed_overrides_diverging_seeds(self):
        dataset = load_dataset("mnist", num_samples=64, seed=0)
        model_a = Sequential(Linear(784, 4, rng=0))
        model_b = Sequential(Linear(784, 4, rng=1))
        a = Trainer(model_a, TrainingConfig(seed=7, shuffle_seed=3, batch_size=16))
        b = Trainer(
            model_b,
            TrainingConfig(seed=11, shuffle_seed=3, batch_size=16, weight_noise_std=0.5),
        )
        assert self._label_sequence(a, dataset) == self._label_sequence(b, dataset)

    def test_shuffle_seed_defaults_to_seed(self):
        config = TrainingConfig(seed=9)
        assert config.effective_shuffle_seed == 9
        assert TrainingConfig(seed=9, shuffle_seed=2).effective_shuffle_seed == 2

    def test_variant_training_config_pins_shuffle_seed(self):
        base = TrainingConfig(seed=5)
        noisy = variant_training_config(
            base, VariantSpec("l2+n4", l2=L2Config(), noise=NoiseAwareConfig(std=0.4))
        )
        plain = variant_training_config(base, VariantSpec("Original"))
        assert noisy.shuffle_seed == plain.shuffle_seed == 5
        assert noisy.weight_decay == L2Config().weight_decay
        assert noisy.weight_noise_std == 0.4

    def test_grid_variants_see_identical_batches(self):
        dataset = load_dataset("mnist", num_samples=64, seed=0)
        base = TrainingConfig(seed=3, batch_size=16)
        specs = [
            VariantSpec("Original"),
            VariantSpec("l2+n5", l2=L2Config(), noise=NoiseAwareConfig(std=0.5)),
        ]
        sequences = []
        for spec in specs:
            model = Sequential(Linear(784, 4, rng=0))
            trainer = Trainer(model, variant_training_config(base, spec))
            sequences.append(self._label_sequence(trainer, dataset))
        assert sequences[0] == sequences[1]


@pytest.fixture(scope="module")
def mnist_split():
    dataset = load_dataset("mnist", num_samples=160, seed=0)
    return train_test_split(dataset, 0.25, seed=1)


class TestStackedSerialEquivalence:
    """train_variant_grid_stacked is numerically identical to the serial grid."""

    GRID = [
        VariantSpec("Original"),
        VariantSpec("L2_reg", l2=L2Config()),
        VariantSpec("l2+n3", l2=L2Config(), noise=NoiseAwareConfig(std=0.3)),
    ]

    @pytest.mark.parametrize("optimizer", ["adam", "sgd"])
    def test_cnn_grid_bit_identical(self, mnist_split, optimizer):
        config = TrainingConfig(
            epochs=2, batch_size=16, lr=2e-3, seed=0, optimizer=optimizer, momentum=0.9
        )
        serial = train_variant_grid(
            "cnn_mnist", mnist_split, config, variants=self.GRID
        )
        stacked = train_variant_grid_stacked(
            "cnn_mnist", mnist_split, config, variants=self.GRID
        )
        for reference, candidate in zip(serial, stacked):
            assert candidate.spec == reference.spec
            assert candidate.baseline_accuracy == reference.baseline_accuracy
            assert candidate.history.train_loss == reference.history.train_loss
            assert candidate.history.train_accuracy == reference.history.train_accuracy
            assert candidate.history.test_accuracy == reference.history.test_accuracy
            assert candidate.history.l2_penalty == reference.history.l2_penalty
            state_ref = reference.model.full_state_dict()
            state_new = candidate.model.full_state_dict()
            for name in state_ref:
                assert np.array_equal(state_ref[name], state_new[name]), name

    def test_resnet_grid_bit_identical(self):
        """Batch-norm models (per-variant statistics) agree bit-for-bit too."""
        dataset = load_dataset("cifar10", num_samples=64, seed=0)
        split = train_test_split(dataset, 0.25, seed=1)
        config = TrainingConfig(epochs=1, batch_size=16, lr=2e-3, seed=0)
        grid = self.GRID[:2] + [
            VariantSpec("l2+n2", l2=L2Config(), noise=NoiseAwareConfig(std=0.2))
        ]
        serial = train_variant_grid("resnet18", split, config, variants=grid)
        stacked = train_variant_grid_stacked("resnet18", split, config, variants=grid)
        for reference, candidate in zip(serial, stacked):
            assert candidate.baseline_accuracy == reference.baseline_accuracy
            state_ref = reference.model.full_state_dict()
            state_new = candidate.model.full_state_dict()
            for name in state_ref:
                assert np.array_equal(state_ref[name], state_new[name]), name

    def test_stacked_trainer_requires_trainable_state(self, mnist_split):
        from repro.nn.models import build_model

        model = build_model("cnn_mnist", rng=0)
        with pytest.raises(ValueError, match="trainable stacked state"):
            StackedTrainer(model, TrainingConfig(epochs=1))

    def test_trainable_state_requires_full_coverage(self):
        layer = Sequential(Linear(4, 3, rng=0), Linear(3, 2, rng=0))
        partial = {"layers.0.weight": np.zeros((2, 3, 4), dtype=np.float32)}
        with pytest.raises(KeyError, match="cover every parameter"):
            layer.load_stacked_state(partial, trainable=True)


class TestFullStateDict:
    def test_roundtrip_includes_batchnorm_buffers(self, rng):
        model = Sequential(Conv2D(2, 3, rng=rng), BatchNorm2D(3))
        model.train()
        model(rng.normal(size=(4, 2, 6, 6)).astype(np.float32))  # move stats
        state = model.full_state_dict()
        assert any(name.endswith("running_mean") for name in state)

        clone = Sequential(Conv2D(2, 3, rng=rng), BatchNorm2D(3))
        clone.load_full_state_dict(state)
        bn_src = model.layers[1]
        bn_dst = clone.layers[1]
        assert np.array_equal(bn_src.running_mean, bn_dst.running_mean)
        assert np.array_equal(bn_src.running_var, bn_dst.running_var)

    def test_missing_buffer_raises(self, rng):
        model = Sequential(BatchNorm2D(2))
        state = model.full_state_dict()
        state.pop("layers.0.running_var")
        with pytest.raises(KeyError, match="missing buffer"):
            model.load_full_state_dict(state)


class TestCheckpointCache:
    def _key(self, **overrides) -> dict:
        key = {"model": "cnn_mnist", "training": {"epochs": 2}, "seed": 0}
        key.update(overrides)
        return key

    def test_roundtrip(self, tmp_path, rng):
        cache = CheckpointCache(tmp_path)
        arrays = {"w": rng.normal(size=(3, 4)).astype(np.float32)}
        cache.put(self._key(), arrays, {"variant": "Original", "baseline_accuracy": 0.9})
        loaded = cache.get(self._key())
        assert loaded is not None
        assert np.array_equal(loaded.arrays["w"], arrays["w"])
        assert loaded.meta["variant"] == "Original"
        assert cache.hits == 1

    def test_miss_on_different_key_and_version(self, tmp_path, rng):
        cache = CheckpointCache(tmp_path, version="1.0")
        cache.put(self._key(), {"w": np.zeros(3, dtype=np.float32)}, {})
        assert cache.get(self._key(seed=1)) is None
        assert CheckpointCache(tmp_path, version="2.0").get(self._key()) is None
        assert cache.get(self._key()) is not None

    @pytest.mark.parametrize(
        "garbage",
        [b"not an npz", b"PK\x03\x04truncated-zip-magic-archive"],
        ids=["no-zip-magic", "zip-magic-truncated"],
    )
    def test_corrupt_entry_is_a_miss(self, tmp_path, garbage):
        cache = CheckpointCache(tmp_path)
        cache.put(self._key(), {"w": np.zeros(3, dtype=np.float32)}, {})
        cache.path_for(self._key()).write_bytes(garbage)
        assert cache.get(self._key()) is None

    def test_orphaned_archive_without_sidecar_is_a_miss(self, tmp_path):
        """put() writes .npz then .json — an interrupted store must not
        surface as a meta-less hit that crashes reconstruction."""
        cache = CheckpointCache(tmp_path)
        cache.put(self._key(), {"w": np.zeros(3, dtype=np.float32)}, {})
        cache.meta_path_for(self._key()).unlink()
        assert cache.get(self._key()) is None
        assert cache.misses == 1

    def test_load_cached_variant_tolerates_bad_meta(self, tmp_path):
        """A sidecar without baseline_accuracy counts as a miss, not a crash."""
        from repro.mitigation.robust_training import load_cached_variant

        cache = CheckpointCache(tmp_path)
        spec = VariantSpec("Original")
        config = TrainingConfig(epochs=1, seed=0)
        from repro.nn.models import build_model

        model = build_model("cnn_mnist", rng=0)
        key = {"model": "cnn_mnist"}
        cache.put(key, model.full_state_dict(), {"history": {}})  # no baseline
        assert load_cached_variant(cache, key, "cnn_mnist", spec, config) is None

    def test_hit_counter_persists(self, tmp_path):
        cache = CheckpointCache(tmp_path)
        cache.put(self._key(), {"w": np.zeros(3, dtype=np.float32)}, {})
        cache.get(self._key())
        cache.get(self._key())
        entries = list(cache.entries())
        assert len(entries) == 1
        assert entries[0]["hits"] == 2
        assert entries[0]["group"] == "cnn_mnist"

    def test_invalidate_and_clear(self, tmp_path):
        cache = CheckpointCache(tmp_path)
        cache.put(self._key(), {"w": np.zeros(3, dtype=np.float32)}, {})
        assert cache.invalidate(self._key())
        assert not cache.invalidate(self._key())
        cache.put(self._key(), {"w": np.zeros(3, dtype=np.float32)}, {})
        assert cache.clear() == 1


class TestStudyCheckpointIntegration:
    def test_warm_study_trains_zero_steps_and_matches(self, tmp_path):
        from repro.analysis.mitigation_analysis import (
            MitigationAnalysisConfig,
            MitigationStudy,
        )

        config = MitigationAnalysisConfig.quick(
            variants=(
                VariantSpec("Original"),
                VariantSpec("l2+n2", l2=L2Config(), noise=NoiseAwareConfig(std=0.2)),
            ),
            fractions=(0.10,),
            num_placements=1,
            checkpoint_cache=True,
            checkpoint_dir=str(tmp_path),
        )
        cold = MitigationStudy(config).run()
        cold_stats = cold.training_stats["cnn_mnist"]
        assert cold_stats["trained"] == 2 and cold_stats["training_steps"] > 0

        warm = MitigationStudy(config).run()
        warm_stats = warm.training_stats["cnn_mnist"]
        assert warm_stats["checkpoint_hits"] == 2
        assert warm_stats["trained"] == 0
        assert warm_stats["training_steps"] == 0
        for first, second in zip(cold.distributions, warm.distributions):
            assert first.baseline_accuracy == second.baseline_accuracy
            assert np.array_equal(first.accuracies, second.accuracies)
        assert cold.best_variant == warm.best_variant

    def test_stacked_and_serial_studies_agree(self):
        from repro.analysis.mitigation_analysis import (
            MitigationAnalysisConfig,
            MitigationStudy,
        )

        overrides = dict(
            variants=(
                VariantSpec("Original"),
                VariantSpec("l2+n2", l2=L2Config(), noise=NoiseAwareConfig(std=0.2)),
            ),
            fractions=(0.10,),
            num_placements=1,
        )
        stacked = MitigationStudy(
            MitigationAnalysisConfig.quick(stacked_training=True, **overrides)
        ).run()
        serial = MitigationStudy(
            MitigationAnalysisConfig.quick(stacked_training=False, **overrides)
        ).run()
        for first, second in zip(stacked.distributions, serial.distributions):
            assert first.baseline_accuracy == second.baseline_accuracy
            assert np.array_equal(first.accuracies, second.accuracies)
