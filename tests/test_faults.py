"""Chaos tests: deterministic fault injection across engine and serve.

The acceptance scenario (``TestServeChaos``) drives a *live* serve campaign
under a seeded plan that crashes ~1/3 of worker runs, corrupts ~1/5 of cache
writes and hangs one run past its wall-clock deadline — and asserts the job
still completes, its surviving results are bit-identical to a fault-free run,
the hung run is quarantined promptly, and no point ever executes more than
``max_attempts`` times.

Everything here relies on plans being a pure function of their seed: a plan
activated through ``REPRO_FAULTS`` (``set_env=True``) propagates into spawned
worker processes, which re-roll on their own pid-salted streams so retried
runs genuinely get a fresh chance.
"""

from __future__ import annotations

import json
import os
import time
from time import monotonic

import pytest

from repro.engine import (
    ProcessPoolRunExecutor,
    ResultCache,
    RetryPolicy,
    RunRecord,
    RunSpec,
    SerialExecutor,
)
from repro.engine.spec import SweepSpec
from repro.faults import (
    ENV_VAR,
    FaultPlan,
    FaultRule,
    InjectedFault,
    active_plan,
    fault_point,
    load_env_plan,
)
from repro.serve import (
    CampaignService,
    JobRecord,
    JobStore,
    ServeClient,
    ServeDaemon,
    ServeError,
    WorkerPool,
    sweep_job_id,
)

#: Six fast points (milliseconds each once a worker's thermal LU is warm).
CHAOS_SWEEP = {
    "experiment_id": "ablation_tuning",
    "grid": {"shifts_nm": [[0.1], [0.2], [0.3], [0.4], [0.5], [0.6]]},
}


def chaos_specs() -> list[RunSpec]:
    return SweepSpec(
        experiment_id="ablation_tuning",
        grid={"shifts_nm": [[0.1], [0.2], [0.3], [0.4], [0.5], [0.6]]},
    ).expand()


def canonical(payload: dict) -> str:
    return json.dumps(payload, sort_keys=True)


# ---------------------------------------------------------------- fault plans
class TestFaultPlan:
    def test_json_round_trip(self):
        plan = FaultPlan(
            [
                FaultRule("worker.run", "crash", probability=0.3),
                FaultRule("cache.put", "corrupt_write", match="ablation", max_fires=2),
                FaultRule("worker.run", "hang", seconds=1.5),
            ],
            seed=42,
        )
        again = FaultPlan.from_json(plan.to_json())
        assert again.to_dict() == plan.to_dict()
        assert again.seed == 42 and again.rules == plan.rules

    def test_validation_rejects_bad_rules(self):
        from repro.utils.validation import ValidationError

        with pytest.raises(ValidationError):
            FaultRule("worker.run", "explode")
        with pytest.raises(ValidationError):
            FaultRule("worker.run", "crash", probability=1.5)
        with pytest.raises(ValidationError):
            FaultRule("", "crash")
        with pytest.raises(ValidationError):
            FaultRule.from_dict({"point": "worker.run", "effect": "crash", "bogus": 1})
        with pytest.raises(ValidationError):
            FaultPlan.from_dict({"seed": 0, "rules": [], "bogus": 1})
        with pytest.raises(ValidationError):
            FaultPlan.from_json("not json")

    def test_firing_is_deterministic_per_seed(self):
        def sequence(seed: int) -> list[bool]:
            plan = FaultPlan(
                [FaultRule("worker.run", "raise", probability=0.5)], seed=seed
            )
            return [plan.fire("worker.run", key=f"k{i}") is not None for i in range(64)]

        assert sequence(7) == sequence(7)
        assert sequence(7) != sequence(8)

    def test_match_filters_and_max_fires_caps(self):
        plan = FaultPlan(
            [FaultRule("worker.run", "raise", match="target", max_fires=2)], seed=0
        )
        assert plan.fire("worker.run", key="other run") is None
        assert plan.fire("cache.put", key="target") is None
        assert plan.fire("worker.run", key="target A") is not None
        assert plan.fire("worker.run", key="target B") is not None
        assert plan.fire("worker.run", key="target C") is None  # cap reached
        counters = plan.counters()[0]
        assert counters["fires"] == 2 and counters["calls"] == 3

    def test_env_round_trip_and_at_file(self, tmp_path):
        plan = FaultPlan([FaultRule("api.handle", "raise")], seed=3)
        assert load_env_plan({}) is None
        assert load_env_plan({ENV_VAR: "  "}) is None
        loaded = load_env_plan({ENV_VAR: plan.to_json()})
        assert loaded is not None and loaded.to_dict() == plan.to_dict()
        path = tmp_path / "plan.json"
        path.write_text(plan.to_json())
        loaded = load_env_plan({ENV_VAR: f"@{path}"})
        assert loaded is not None and loaded.to_dict() == plan.to_dict()

    def test_activated_restores_previous_state(self):
        assert active_plan() is None
        plan = FaultPlan([FaultRule("worker.run", "raise")], seed=1)
        with plan.activated(set_env=True):
            assert active_plan() is plan
            assert os.environ[ENV_VAR] == plan.to_json()
        assert active_plan() is None
        assert ENV_VAR not in os.environ

    def test_fault_point_is_noop_without_a_plan(self):
        assert active_plan() is None
        assert fault_point("worker.run", key="anything") is None

    def test_effects_raise_hang_corrupt_enospc(self):
        plan = FaultPlan(
            [
                FaultRule("p.raise", "raise"),
                FaultRule("p.hang", "hang", seconds=0.2),
                FaultRule("p.corrupt", "corrupt_write"),
                FaultRule("p.enospc", "enospc"),
            ]
        )
        with plan.activated():
            with pytest.raises(InjectedFault):
                fault_point("p.raise")
            start = monotonic()
            assert fault_point("p.hang") is None
            assert monotonic() - start >= 0.2
            assert fault_point("p.corrupt") == "corrupt_write"
            with pytest.raises(OSError) as err:
                fault_point("p.enospc")
            assert "ENOSPC" in str(err.value) or err.value.errno is not None

    def test_first_matching_rule_wins(self):
        plan = FaultPlan(
            [
                FaultRule("p", "corrupt_write", match="special"),
                FaultRule("p", "raise"),
            ]
        )
        with plan.activated():
            assert fault_point("p", key="a special key") == "corrupt_write"
            with pytest.raises(InjectedFault):
                fault_point("p", key="ordinary")


# ------------------------------------------------------------- cache faults
class TestCacheFaults:
    def _record(self, cache: ResultCache, shift: float = 0.2) -> RunRecord:
        spec = RunSpec("ablation_tuning", params={"shifts_nm": [shift]})
        return RunRecord(
            fingerprint=cache.fingerprint(spec), spec=spec, payload={"v": shift}
        )

    def test_at_rest_corruption_is_quarantined_on_read(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = self._record(cache)
        path = cache.put(record)
        path.write_text('{"torn": ')  # freeze a torn write to disk
        assert cache.get(record.spec) is None  # miss, not a crash
        assert not path.exists()  # moved aside...
        assert cache.quarantined_count() == 1  # ...into corrupt/
        quarantined = list(cache.corrupt_dir.iterdir())
        assert quarantined[0].name.startswith("ablation_tuning-")
        # The miss lets the run recompute and rewrite cleanly.
        cache.put(record)
        hit = cache.get(record.spec)
        assert hit is not None and hit.payload == {"v": 0.2}

    def test_repeated_corruption_never_overwrites_evidence(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = self._record(cache)
        for _ in range(3):
            path = cache.put(record)
            path.write_text("garbage")
            assert cache.get(record.spec) is None
        assert cache.quarantined_count() == 3

    def test_verified_put_survives_corrupt_writes(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = self._record(cache)
        plan = FaultPlan([FaultRule("cache.put", "corrupt_write", max_fires=2)])
        with plan.activated():
            path = cache.put(record, verify=True)
        # Two torn attempts were quarantined; the third wrote a good entry.
        assert cache.quarantined_count() == 2
        hit = cache.get(record.spec)
        assert hit is not None and hit.payload == record.payload
        assert json.loads(path.read_text())["payload"] == {"v": 0.2}

    def test_verified_put_raises_when_writes_never_verify(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = self._record(cache)
        plan = FaultPlan([FaultRule("cache.put", "corrupt_write")])
        with plan.activated():
            with pytest.raises(OSError):
                cache.put(record, verify=True)
        assert cache.get(record.spec) is None

    def test_enospc_propagates_from_put(self, tmp_path):
        cache = ResultCache(tmp_path)
        plan = FaultPlan([FaultRule("cache.put", "enospc")])
        with plan.activated():
            with pytest.raises(OSError):
                cache.put(self._record(cache))

    def test_records_walk_quarantines_bad_files(self, tmp_path):
        cache = ResultCache(tmp_path)
        good = self._record(cache, shift=0.2)
        bad = self._record(cache, shift=0.5)
        cache.put(good)
        cache.put(bad).write_text("]]]")
        records = list(cache.records())
        assert [r.payload for r in records] == [good.payload]
        assert cache.quarantined_count() == 1

    def test_clear_preserves_quarantined_evidence(self, tmp_path):
        cache = ResultCache(tmp_path)
        record = self._record(cache)
        cache.put(record).write_text("junk")
        assert cache.get(record.spec) is None
        cache.put(record)
        assert cache.clear() == 1
        assert cache.quarantined_count() == 1


# -------------------------------------------------------------- retry policy
class TestRetryPolicy:
    def test_backoff_is_deterministic_capped_and_jittered(self):
        policy = RetryPolicy(max_attempts=5, backoff_s=0.5, backoff_cap_s=2.0, seed=1)
        delays = [policy.delay_s(n, key="run") for n in (1, 2, 3, 4, 5)]
        assert delays == [policy.delay_s(n, key="run") for n in (1, 2, 3, 4, 5)]
        for attempt, delay in enumerate(delays, start=1):
            base = min(2.0, 0.5 * 2 ** (attempt - 1))
            assert 0.5 * base <= delay <= base
        assert policy.delay_s(1, key="a") != policy.delay_s(1, key="b")
        assert RetryPolicy(backoff_s=0.0).delay_s(3) == 0.0

    def test_from_dict_merges_over_default_and_rejects_unknown(self):
        default = RetryPolicy(max_attempts=3, backoff_s=0.5, deadline_s=60.0)
        merged = RetryPolicy.from_dict({"max_attempts": 5}, default=default)
        assert merged.max_attempts == 5
        assert merged.backoff_s == 0.5 and merged.deadline_s == 60.0
        cleared = RetryPolicy.from_dict({"deadline_s": None}, default=default)
        assert cleared.deadline_s is None
        with pytest.raises(ValueError):
            RetryPolicy.from_dict({"max_attemptz": 5})
        with pytest.raises(ValueError):
            RetryPolicy.from_dict({"deadline_s": -1})
        assert RetryPolicy.from_dict(default.to_dict()) == default


# ---------------------------------------------------------- engine executors
class TestExecutorRetry:
    def _spec(self) -> RunSpec:
        return RunSpec("ablation_tuning", params={"shifts_nm": [0.2]})

    def test_serial_retries_until_success(self):
        plan = FaultPlan([FaultRule("worker.run", "raise", max_fires=2)])
        policy = RetryPolicy(max_attempts=3, backoff_s=0.01)
        with plan.activated():
            [(_, record)] = list(
                SerialExecutor(retry=policy).run_specs([self._spec()])
            )
        assert record.ok
        assert record.provenance["attempts"] == 3

    def test_serial_quarantines_after_budget(self):
        plan = FaultPlan([FaultRule("worker.run", "raise")])
        policy = RetryPolicy(max_attempts=2, backoff_s=0.01)
        with plan.activated():
            [(_, record)] = list(
                SerialExecutor(retry=policy).run_specs([self._spec()])
            )
        assert not record.ok
        assert "InjectedFault" in (record.error or "")
        assert record.provenance["attempts"] == 2

    def test_default_policy_keeps_failures_final(self):
        plan = FaultPlan([FaultRule("worker.run", "raise")])
        with plan.activated():
            [(_, record)] = list(SerialExecutor().run_specs([self._spec()]))
        assert not record.ok
        assert "attempts" not in record.provenance  # historical record shape

    @pytest.mark.slow
    def test_process_pool_survives_worker_crashes(self):
        """~40% of pool runs die mid-flight; retry completes every point and
        payloads stay bit-identical to a fault-free serial run."""
        specs = chaos_specs()
        baseline = {
            record.spec.label(): record.payload
            for _, record in SerialExecutor().run_specs(specs)
        }
        plan = FaultPlan(
            [FaultRule("worker.run", "crash", probability=0.4)], seed=11
        )
        policy = RetryPolicy(max_attempts=6, backoff_s=0.05, backoff_cap_s=0.2)
        pool = ProcessPoolRunExecutor(max_workers=2, retry=policy)
        with plan.activated(set_env=True):
            records = dict(pool.run_specs(specs))
        assert len(records) == len(specs)
        for record in records.values():
            assert record.ok, record.error
            assert canonical(record.payload) == canonical(baseline[record.spec.label()])

    @pytest.mark.slow
    def test_process_pool_deadline_quarantines_hung_run(self):
        specs = chaos_specs()[:4]
        hung = specs[2]
        plan = FaultPlan(
            [FaultRule("worker.run", "hang", seconds=60.0, match=hung.label())],
            seed=5,
        )
        policy = RetryPolicy(max_attempts=2, backoff_s=0.05, deadline_s=1.5)
        pool = ProcessPoolRunExecutor(max_workers=2, retry=policy)
        start = monotonic()
        with plan.activated(set_env=True):
            records = dict(pool.run_specs(specs))
        assert monotonic() - start < 60  # nowhere near the 60s hang
        assert len(records) == 4
        by_label = {record.spec.label(): record for record in records.values()}
        poison = by_label[hung.label()]
        assert not poison.ok and "quarantined" in (poison.error or "")
        assert poison.provenance["attempts"] == 2
        assert all(r.ok for label, r in by_label.items() if label != hung.label())


# ---------------------------------------------------------- worker pool
class TestWorkerPoolRobustness:
    def _drain(self, pool: WorkerPool, seconds: float = 0.2) -> None:
        """Consume pending started/heartbeat messages (nothing completes)."""
        for _ in pool.completions(timeout=seconds):
            pass

    def test_stop_graceful_drains_a_full_task_queue(self):
        """Regression: stop(graceful=True) used to give up on the first Full,
        leaving stale tasks enqueued and some workers without a sentinel."""
        specs = chaos_specs()
        plan = FaultPlan([FaultRule("worker.run", "hang", seconds=60.0)])
        pool = WorkerPool(workers=1, queue_depth=2)
        with plan.activated(set_env=True):
            pool.start()
            pool.submit(0, specs[0])  # consumed: the worker hangs on it
            deadline = monotonic() + 30
            while not pool.in_flight():
                assert monotonic() < deadline, "worker never announced its run"
                self._drain(pool, seconds=0.1)
            pool.submit(1, specs[1])  # these two fill the bounded queue
            pool.submit(2, specs[2])
            start = monotonic()
            pool.stop(graceful=True, timeout=1.0)
        assert monotonic() - start < 20
        assert pool.alive() == 0
        # The old code broke out on the first Full: both stale tasks stayed
        # queued and no sentinel ever landed.  Now stale slots are shed until
        # every sentinel fits (the hung worker never consumed its sentinel,
        # so it is still there to observe).
        import queue as queue_module

        leftovers = []
        deadline = monotonic() + 5  # allow for the queue's feeder latency
        while monotonic() < deadline:
            try:
                leftovers.append(pool.task_queue.get_nowait())
            except (OSError, ValueError):
                break
            except queue_module.Empty:
                if None in leftovers:
                    break
                time.sleep(0.05)
        assert None in leftovers, f"no sentinel ever landed: {leftovers}"
        stale = [item for item in leftovers if item is not None]
        assert len(stale) < 2, f"no stale task was shed for the sentinel: {stale}"

    def test_max_respawns_backstop_and_reap_redispatch(self):
        """Satellite: crashing workers are replaced up to the budget; reap()
        names exactly the lost tokens; past the budget the pool reports
        degraded instead of forking forever."""
        specs = chaos_specs()
        plan = FaultPlan([FaultRule("worker.run", "crash")])  # always crash
        pool = WorkerPool(workers=1)
        pool.max_respawns = 2
        with plan.activated(set_env=True):
            pool.start()
            try:
                for round_no, token in enumerate(("a", "b", "c")):
                    pool.submit(token, specs[round_no])
                    deadline = monotonic() + 60
                    # Wait for the crash, consuming the started announcement
                    # so the pool knows which token went down with the worker.
                    while pool.alive() > 0 or token not in pool.in_flight():
                        assert monotonic() < deadline, f"worker never died ({token})"
                        self._drain(pool, seconds=0.1)
                    lost = pool.reap()
                    assert lost == [token]  # exactly the hosted run, no more
                assert pool.respawns == 2
                assert pool.alive() == 0  # budget spent: no replacement
                assert pool.degraded
                health = pool.health()
                assert health["degraded"] is True
                assert health["alive"] == 0 and health["respawns"] == 2
            finally:
                pool.stop(graceful=False)
        assert not pool.degraded  # a stopped pool is not degraded, just stopped


# --------------------------------------------------------------- serve chaos
def _run_service_job(
    tmp_path,
    sweep: dict,
    plan: FaultPlan | None = None,
    policy: RetryPolicy | None = None,
    timeout: float = 180.0,
):
    """Run one sweep on a live CampaignService; returns (job, results, health)."""
    service = CampaignService(
        jobstore_dir=tmp_path / "jobs",
        cache_dir=tmp_path / "cache",
        workers=2,
        tick_s=0.05,
        # A generous default budget: with crash probability 0.3 per attempt,
        # a point needs 8 crashes in a row (~0.007%) to be quarantined by
        # accident, so the bit-identity assertions are statistically stable.
        policy=policy or RetryPolicy(max_attempts=8, backoff_s=0.1, backoff_cap_s=0.5),
    )
    context = plan.activated(set_env=True) if plan is not None else None
    if context is not None:
        context.__enter__()
    try:
        service.start()
        job, created = service.submit(sweep)
        assert created
        deadline = monotonic() + timeout
        while monotonic() < deadline:
            current = service.job(job.job_id)
            if current is not None and current.finished:
                break
            time.sleep(0.1)
        final = service.job(job.job_id)
        assert final is not None and final.finished, "job never reached a terminal state"
        return final, service.results(job.job_id), service.health()
    finally:
        service.shutdown()
        if context is not None:
            context.__exit__(None, None, None)


class TestServeChaos:
    @pytest.mark.slow
    def test_chaos_sweep_completes_bit_identical(self, tmp_path):
        """Crash ~30% of worker runs and corrupt ~20% of cache writes: the
        campaign still finishes with zero failures and every payload
        bit-identical to the fault-free baseline."""
        baseline_job, baseline_results, _ = _run_service_job(
            tmp_path / "baseline", CHAOS_SWEEP
        )
        assert baseline_job.state == "done" and baseline_job.failures == 0
        baseline = {
            r["label"]: r["payload"] for r in baseline_results["records"]
        }

        plan = FaultPlan(
            [
                FaultRule("worker.run", "crash", probability=0.3),
                FaultRule("cache.put", "corrupt_write", probability=0.2),
            ],
            seed=42,
        )
        job, results, health = _run_service_job(tmp_path / "chaos", CHAOS_SWEEP, plan)
        assert job.state == "done", (job.state, job.error, job.quarantined)
        assert job.done == job.total == 6
        assert job.failures == 0 and not job.quarantined
        assert health["faults_active"] is not None  # plan visible in /healthz
        for record in results["records"]:
            assert record["status"] == "ok", record
            assert canonical(record["payload"]) == canonical(
                baseline[record["label"]]
            ), f"payload drift under chaos: {record['label']}"

    @pytest.mark.slow
    def test_acceptance_full_chaos_with_hung_run(self, tmp_path):
        """The ISSUE acceptance scenario in one plan: crashes + corrupt cache
        writes + one run that hangs past its deadline every attempt.  The job
        completes promptly; the hung point is quarantined at exactly
        max_attempts; every other payload is bit-identical to fault-free."""
        baseline_job, baseline_results, _ = _run_service_job(
            tmp_path / "baseline", CHAOS_SWEEP
        )
        baseline = {
            r["label"]: r["payload"] for r in baseline_results["records"]
        }
        hung = chaos_specs()[3]
        plan = FaultPlan(
            [
                FaultRule("worker.run", "hang", seconds=120.0, match=hung.label()),
                FaultRule("worker.run", "crash", probability=0.3),
                FaultRule("cache.put", "corrupt_write", probability=0.2),
            ],
            seed=42,
        )
        # max_attempts=6 keeps an accidental quarantine (a point crashing on
        # every attempt: 0.3^6 per point) vanishingly rare while the matched
        # point — which hangs on *every* attempt — is still quarantined fast:
        # six 3s deadlines plus backoff is ~20s.
        policy = RetryPolicy(
            max_attempts=6, backoff_s=0.1, backoff_cap_s=0.5, deadline_s=3.0
        )
        start = monotonic()
        job, results, _ = _run_service_job(tmp_path / "chaos", CHAOS_SWEEP, plan, policy)
        elapsed = monotonic() - start
        assert elapsed < 120, "the hung run stalled the job"  # 120s hang never waited out
        assert job.state == "failed"  # completed terminally, with the poison run recorded
        assert job.done == job.total == 6
        assert job.failures == 1
        assert len(job.quarantined) == 1
        entry = job.quarantined[0]
        assert entry["label"] == hung.label()
        assert entry["attempts"] == policy.max_attempts  # never dispatched beyond budget
        assert "deadline" in entry["error"]
        statuses = {r["label"]: r for r in results["records"]}
        assert statuses[hung.label()]["status"] == "quarantined"
        for label, record in statuses.items():
            if label == hung.label():
                continue
            assert record["status"] == "ok", record
            assert canonical(record["payload"]) == canonical(baseline[label])

    def test_degraded_pool_is_surfaced_by_health(self, tmp_path):
        """Satellite: /healthz flips status to "degraded" (with the explicit
        boolean) once the respawn budget is spent with reduced capacity."""
        service = CampaignService(
            jobstore_dir=tmp_path / "jobs", cache_dir=tmp_path / "cache", workers=2
        )
        health = service.health()
        assert health["status"] == "ok" and health["degraded"] is False
        assert health["pool"]["max_respawns"] == service.pool.max_respawns
        assert health["policy"]["max_attempts"] >= 1
        # Simulate a pool that spent its budget with capacity lost (white-box:
        # mark it started with zero live workers rather than burning real
        # processes — the full lifecycle is covered by the backstop test).
        service.pool._started = True
        service.pool.respawns = service.pool.max_respawns
        health = service.health()
        assert health["status"] == "degraded" and health["degraded"] is True
        assert health["pool"]["degraded"] is True

    def test_bad_policy_rejected_at_submit(self, tmp_path):
        service = CampaignService(
            jobstore_dir=tmp_path / "jobs", cache_dir=tmp_path / "cache", workers=1
        )
        with pytest.raises((KeyError, ValueError)):
            service.submit(dict(CHAOS_SWEEP, policy={"max_attemptz": 2}))
        with pytest.raises(KeyError):
            service.submit(dict(CHAOS_SWEEP, policy="not an object"))

    def test_policy_override_persists_on_the_job(self, tmp_path):
        service = CampaignService(
            jobstore_dir=tmp_path / "jobs", cache_dir=tmp_path / "cache", workers=1
        )
        job, created = service.submit(
            dict(CHAOS_SWEEP, policy={"max_attempts": 5, "deadline_s": 30})
        )
        assert created
        stored = service.job(job.job_id)
        assert stored.policy == {"max_attempts": 5, "deadline_s": 30}
        effective = service._job_policy(stored)
        assert effective.max_attempts == 5 and effective.deadline_s == 30.0
        # The override is not part of the job identity: same sweep dedupes.
        again, created = service.submit(dict(CHAOS_SWEEP, policy={"max_attempts": 2}))
        assert again.job_id == job.job_id and not created
        assert service.job(job.job_id).policy == {"max_attempts": 2}


# ----------------------------------------------------------- jobstore faults
class TestJobStoreFaults:
    def _job(self) -> JobRecord:
        specs = [RunSpec("ablation_tuning", params={"shifts_nm": [0.2]})]
        return JobRecord(
            job_id=sweep_job_id(specs),
            sweep={"experiment_id": "ablation_tuning"},
            specs=tuple(spec.canonical() for spec in specs),
        )

    def test_save_survives_corrupt_writes(self, tmp_path):
        store = JobStore(tmp_path)
        plan = FaultPlan([FaultRule("jobstore.save", "corrupt_write", max_fires=2)])
        with plan.activated():
            job = store.save(self._job())
        loaded = store.get(job.job_id)
        assert loaded is not None and loaded.to_dict() == job.to_dict()

    def test_save_raises_when_disk_stays_broken(self, tmp_path):
        store = JobStore(tmp_path)
        plan = FaultPlan([FaultRule("jobstore.save", "enospc")])
        with plan.activated():
            with pytest.raises(OSError) as err:
                store.save(self._job())
        assert "job store write failed" in str(err.value)

    def test_quarantined_entries_round_trip(self, tmp_path):
        store = JobStore(tmp_path)
        job = store.save(self._job())
        entry = {"index": 0, "label": "x", "attempts": 3, "error": "boom"}
        job = store.update(job.job_id, quarantined=(entry,), policy={"max_attempts": 3})
        loaded = store.get(job.job_id)
        assert loaded.quarantined == (entry,)
        assert loaded.policy == {"max_attempts": 3}
        assert len(loaded.summary()["quarantined"]) == 1
        requeued = loaded.requeued(note="fresh chance")
        assert requeued.quarantined == ()  # poison runs get retried on requeue
        assert requeued.policy == {"max_attempts": 3}  # the policy survives


# ------------------------------------------------------------- API + client
class TestClientBackoff:
    @pytest.fixture()
    def daemon(self, tmp_path):
        service = CampaignService(
            jobstore_dir=tmp_path / "jobs", cache_dir=tmp_path / "cache", workers=1
        )
        daemon = ServeDaemon(service, port=0)
        daemon.start()
        yield daemon
        daemon.shutdown()

    def test_client_retries_injected_503s(self, daemon):
        plan = FaultPlan(
            [FaultRule("api.handle", "raise", match="healthz", max_fires=2)]
        )
        client = ServeClient(
            daemon.url, retries=3, backoff_s=0.01, backoff_cap_s=0.05
        )
        with plan.activated():  # in-process: handler threads see it
            health = client.health()
        assert health["status"] == "ok"
        assert plan.counters()[0]["fires"] == 2  # both 503s were absorbed

    def test_client_surfaces_503_after_budget(self, daemon):
        plan = FaultPlan([FaultRule("api.handle", "raise", match="healthz")])
        client = ServeClient(
            daemon.url, retries=1, backoff_s=0.01, backoff_cap_s=0.05
        )
        with plan.activated():
            with pytest.raises(ServeError) as err:
                client.health()
        assert err.value.status == 503
        assert "temporarily unavailable" in str(err.value)

    def test_unexpected_handler_errors_are_json_500(self, daemon):
        plan = FaultPlan([FaultRule("api.handle", "enospc", match="healthz")])
        client = ServeClient(daemon.url, retries=2, backoff_s=0.01)
        with plan.activated():
            with pytest.raises(ServeError) as err:
                client.health()
        assert err.value.status == 500  # terminal shape: not retried
        assert "OSError" in str(err.value)
        assert plan.counters()[0]["fires"] == 1  # exactly one attempt

    def test_definitive_errors_never_retry(self, daemon):
        client = ServeClient(daemon.url, retries=3, backoff_s=0.01)
        start = monotonic()
        with pytest.raises(ServeError) as err:
            client.job("no-such-job")
        assert err.value.status == 404
        assert monotonic() - start < 1.0  # no backoff loop for a 404

    def test_retries_must_be_non_negative(self):
        with pytest.raises(ValueError):
            ServeClient("http://127.0.0.1:1", retries=-1)
