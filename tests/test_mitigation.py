"""Tests for the mitigation package: L2, noise-aware training, variant grid, selection."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_dataset, train_test_split
from repro.mitigation import (
    L2Config,
    NoiseAwareConfig,
    VariantSpec,
    default_variant_grid,
    l2_training_config,
    noise_aware_training_config,
    select_most_robust,
    train_variant,
    train_variant_grid,
)
from repro.mitigation.noise_aware import PAPER_NOISE_LEVELS
from repro.mitigation.selection import score_variant
from repro.nn.training import TrainingConfig


class TestConfigs:
    def test_l2_config_applies_weight_decay(self):
        base = TrainingConfig(epochs=1)
        updated = l2_training_config(base, L2Config(weight_decay=1e-3))
        assert updated.weight_decay == 1e-3
        assert base.weight_decay == 0.0

    def test_l2_config_rejects_negative(self):
        with pytest.raises(ValueError):
            L2Config(weight_decay=-1.0)

    def test_noise_config_suffix_and_fields(self):
        noise = NoiseAwareConfig(std=0.3)
        assert noise.variant_suffix == "n3"
        assert noise.enabled
        assert noise.model_noise_std == 0.3
        assert noise.weight_noise_std == 0.3

    def test_noise_config_injection_sites(self):
        activations_only = NoiseAwareConfig(std=0.2, inject_weights=False)
        assert activations_only.weight_noise_std == 0.0
        assert activations_only.model_noise_std == 0.2
        weights_only = NoiseAwareConfig(std=0.2, inject_activations=False)
        assert weights_only.model_noise_std == 0.0
        assert weights_only.weight_noise_std == 0.2

    def test_noise_training_config_helper(self):
        base = TrainingConfig(epochs=1)
        updated = noise_aware_training_config(base, NoiseAwareConfig(std=0.4))
        assert updated.weight_noise_std == 0.4

    def test_paper_noise_levels(self):
        assert PAPER_NOISE_LEVELS == (0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9)


class TestVariantGrid:
    def test_default_grid_matches_paper(self):
        grid = default_variant_grid()
        names = [spec.name for spec in grid]
        assert names[0] == "Original"
        assert names[1] == "L2_reg"
        assert names[2:] == [f"l2+n{i}" for i in range(1, 10)]
        assert len(grid) == 11

    def test_noise_only_variants_optional(self):
        grid = default_variant_grid(include_noise_only=True, noise_levels=(0.1, 0.2))
        names = [spec.name for spec in grid]
        assert "noise_n1" in names and "noise_n2" in names

    def test_variant_flags(self):
        original = VariantSpec(name="Original")
        combined = VariantSpec(name="l2+n1", l2=L2Config(), noise=NoiseAwareConfig(std=0.1))
        assert not original.uses_l2 and not original.uses_noise
        assert combined.uses_l2 and combined.uses_noise


class TestTrainVariants:
    @pytest.fixture(scope="class")
    def small_split(self):
        data = load_dataset("mnist", num_samples=260, seed=3)
        return train_test_split(data, 0.25, seed=4)

    def test_train_single_variant_reaches_reasonable_accuracy(self, small_split):
        result = train_variant(
            "cnn_mnist",
            VariantSpec(name="L2_reg", l2=L2Config()),
            small_split,
            TrainingConfig(epochs=3, batch_size=32, lr=2e-3, seed=0),
        )
        assert result.baseline_accuracy > 0.5
        assert result.spec.name == "L2_reg"

    def test_noise_variant_builds_model_with_noise_layers(self, small_split):
        from repro.nn.layers import GaussianNoise

        result = train_variant(
            "cnn_mnist",
            VariantSpec(name="l2+n3", l2=L2Config(), noise=NoiseAwareConfig(std=0.3)),
            small_split,
            TrainingConfig(epochs=1, batch_size=32, lr=2e-3, seed=0),
        )
        assert any(isinstance(m, GaussianNoise) for m in result.model.modules())

    def test_train_variant_grid_returns_all(self, small_split):
        variants = (
            VariantSpec(name="Original"),
            VariantSpec(name="L2_reg", l2=L2Config()),
        )
        results = train_variant_grid(
            "cnn_mnist",
            small_split,
            TrainingConfig(epochs=1, batch_size=32, lr=2e-3, seed=0),
            variants=list(variants),
        )
        assert [r.spec.name for r in results] == ["Original", "L2_reg"]


class TestSelection:
    def test_selects_highest_median(self):
        accuracy_by_variant = {
            "Original": np.array([0.5, 0.6, 0.4]),
            "L2_reg": np.array([0.7, 0.72, 0.68]),
            "l2+n3": np.array([0.8, 0.82, 0.78]),
        }
        best, scores = select_most_robust(accuracy_by_variant)
        assert best == "l2+n3"
        assert scores[0].variant == "l2+n3"
        assert scores[0].median_accuracy > scores[-1].median_accuracy

    def test_original_is_excluded_even_if_best(self):
        accuracy_by_variant = {
            "Original": np.array([0.99, 0.99]),
            "L2_reg": np.array([0.6, 0.6]),
        }
        best, _ = select_most_robust(accuracy_by_variant)
        assert best == "L2_reg"

    def test_mean_breaks_median_ties(self):
        accuracy_by_variant = {
            "Original": np.array([0.1]),
            "a": np.array([0.5, 0.7, 0.7]),
            "b": np.array([0.7, 0.7, 0.7]),
        }
        best, _ = select_most_robust(accuracy_by_variant)
        assert best == "b"

    def test_empty_candidates_raise(self):
        with pytest.raises(ValueError):
            select_most_robust({"Original": np.array([0.5])})
        with pytest.raises(ValueError):
            score_variant("x", np.array([]))
