"""Tests for the model zoo (Table I architectures) and the training loop."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import load_dataset, train_test_split
from repro.nn import Trainer, TrainingConfig, evaluate_accuracy
from repro.nn.models import (
    MnistCNN,
    ResNet18,
    VGG16Variant,
    build_model,
    full_scale_summary,
    summarize_model,
    table1_rows,
)
from repro.nn.models.table1 import PAPER_TABLE1
from repro.utils.validation import ValidationError


class TestModelArchitectures:
    def test_mnist_cnn_forward_backward_shapes(self):
        model = MnistCNN.scaled_config(rng=0)
        x = np.zeros((2, 1, 28, 28), dtype=np.float32)
        out = model(x)
        assert out.shape == (2, 10)
        grad = model.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_resnet_forward_backward_shapes(self):
        model = ResNet18(base_width=4, rng=0)
        x = np.zeros((2, 3, 16, 16), dtype=np.float32)
        out = model(x)
        assert out.shape == (2, 10)
        grad = model.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_vgg_forward_backward_shapes(self):
        model = VGG16Variant.scaled_config(image_size=32, rng=0)
        x = np.zeros((2, 3, 32, 32), dtype=np.float32)
        out = model(x)
        assert out.shape == (2, 10)
        grad = model.backward(np.ones_like(out))
        assert grad.shape == x.shape

    def test_vgg_requires_six_conv_widths(self):
        with pytest.raises(ValueError):
            VGG16Variant(conv_channels=(8, 8, 8))

    def test_noise_std_inserts_gaussian_layers(self):
        from repro.nn.layers import GaussianNoise

        noisy = MnistCNN.scaled_config(noise_std=0.3, rng=0)
        plain = MnistCNN.scaled_config(noise_std=0.0, rng=0)
        assert any(isinstance(m, GaussianNoise) for m in noisy.modules())
        assert not any(isinstance(m, GaussianNoise) for m in plain.modules())

    def test_registry_build_model_profiles(self):
        scaled = build_model("resnet18", profile="scaled", rng=0)
        assert scaled.base_width == 8
        with pytest.raises(ValidationError):
            build_model("unknown-model")
        with pytest.raises(ValidationError):
            build_model("resnet18", profile="huge")

    def test_resnet_block_gradient_flow(self):
        """Residual blocks must propagate gradients through both branches."""
        model = ResNet18(base_width=4, rng=0)
        x = np.random.default_rng(0).normal(size=(2, 3, 8, 8)).astype(np.float32)
        out = model(x)
        model.backward(np.ones_like(out))
        grads = [np.abs(p.grad).sum() for p in model.parameters() if p.kind == "conv"]
        assert all(g > 0 for g in grads)


class TestTable1:
    def test_full_scale_total_parameters_match_paper(self):
        """Totals for CNN_1 and VGG16_v match Table I within 2%."""
        for model_name in ("cnn_mnist", "vgg16_variant"):
            measured = full_scale_summary(model_name)
            paper = PAPER_TABLE1[model_name]
            assert measured.total_parameters == pytest.approx(
                paper.total_parameters, rel=0.02
            )

    def test_full_scale_layer_counts_match_paper(self):
        for model_name, paper in PAPER_TABLE1.items():
            measured = full_scale_summary(model_name)
            assert measured.conv_layers == paper.conv_layers
            assert measured.fc_layers == paper.fc_layers

    def test_vgg_fc_parameters_match_paper_closely(self):
        measured = full_scale_summary("vgg16_variant")
        assert measured.fc_parameters == pytest.approx(119_600_000, rel=0.001)

    def test_resnet_fc_parameters_match_paper(self):
        measured = full_scale_summary("resnet18")
        assert measured.fc_parameters == pytest.approx(5_100, rel=0.01)

    def test_table1_rows_structure(self):
        rows = table1_rows(include_measured=True)
        assert len(rows) == 3
        assert {row["model"] for row in rows} == {"CNN_1", "ResNet18", "VGG16_v"}
        for row in rows:
            assert row["measured_total_parameters"] > 0

    def test_summarize_model_counts_scaled_model(self):
        model = MnistCNN.scaled_config(rng=0)
        summary = summarize_model(model)
        assert summary.conv_layers == 2
        assert summary.fc_layers == 3
        assert summary.total_parameters == model.num_parameters() - _non_weight_params(model)


def _non_weight_params(model) -> int:
    return sum(
        p.size for p in model.parameters() if p.kind not in ("conv", "fc", "bias")
    )


class TestTrainer:
    def test_training_improves_accuracy(self):
        data = load_dataset("mnist", num_samples=300, seed=0)
        split = train_test_split(data, 0.25, seed=1)
        model = build_model("cnn_mnist", profile="scaled", rng=0)
        before = evaluate_accuracy(model, split.test)
        history = Trainer(model, TrainingConfig(epochs=3, batch_size=32, lr=2e-3, seed=0)).fit(
            split.train, split.test
        )
        assert history.final_test_accuracy > max(before, 0.5)
        assert len(history.train_loss) == 3
        assert history.train_loss[-1] < history.train_loss[0]

    def test_weight_decay_reduces_weight_norm(self):
        data = load_dataset("mnist", num_samples=200, seed=0)
        split = train_test_split(data, 0.25, seed=1)

        def weight_norm(model):
            return sum(
                float(np.sum(p.data**2)) for p in model.parameters() if p.kind in ("conv", "fc")
            )

        plain = build_model("cnn_mnist", profile="scaled", rng=0)
        decayed = build_model("cnn_mnist", profile="scaled", rng=0)
        Trainer(plain, TrainingConfig(epochs=3, lr=2e-3, seed=0)).fit(split.train)
        Trainer(decayed, TrainingConfig(epochs=3, lr=2e-3, weight_decay=1e-2, seed=0)).fit(
            split.train
        )
        assert weight_norm(decayed) < weight_norm(plain)

    def test_weight_noise_training_restores_clean_weights_each_step(self):
        data = load_dataset("mnist", num_samples=120, seed=0)
        split = train_test_split(data, 0.25, seed=1)
        model = build_model("cnn_mnist", profile="scaled", rng=0)
        config = TrainingConfig(epochs=1, batch_size=32, lr=1e-3, weight_noise_std=0.4, seed=0)
        history = Trainer(model, config).fit(split.train)
        assert np.isfinite(history.train_loss[-1])

    def test_invalid_config_rejected(self):
        with pytest.raises(ValidationError):
            TrainingConfig(epochs=0)
        with pytest.raises(ValidationError):
            TrainingConfig(optimizer="lbfgs")
        with pytest.raises(ValueError):
            TrainingConfig(weight_decay=-1.0)

    def test_evaluate_accuracy_bounds(self, mnist_split, trained_mnist_model):
        accuracy = evaluate_accuracy(trained_mnist_model, mnist_split.test)
        assert 0.0 <= accuracy <= 1.0
        assert accuracy > 0.7
