"""Tests for the thermal substrate (floorplan, grid solver, hotspot heatmap)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.thermal import (
    Floorplan,
    GridThermalSolver,
    ThermalSolverConfig,
    simulate_hotspot_attack,
)
from repro.utils.validation import ValidationError


class TestFloorplan:
    def test_places_all_banks_without_overlap(self):
        plan = Floorplan(num_banks=12, banks_per_row=4)
        assert len(plan.placements) == 12
        centers = {p.center_um for p in plan.placements}
        assert len(centers) == 12
        assert plan.num_rows == 3

    def test_die_dimensions_cover_tiles(self):
        plan = Floorplan(num_banks=10, banks_per_row=5, bank_width_um=100, bank_height_um=50,
                         spacing_um=10, margin_um=20)
        last = plan.placements[-1]
        assert last.x_um + last.width_um <= plan.die_width_um
        assert last.y_um + last.height_um <= plan.die_height_um

    def test_neighbours_of_interior_bank(self):
        plan = Floorplan(num_banks=9, banks_per_row=3)
        neighbours = plan.neighbours_of(4, radius=1)
        assert sorted(neighbours) == [0, 1, 2, 3, 5, 6, 7, 8]
        corner = plan.neighbours_of(0, radius=1)
        assert sorted(corner) == [1, 3, 4]

    def test_bank_cells_within_grid(self):
        plan = Floorplan(num_banks=6, banks_per_row=3)
        rows, cols = plan.bank_cells(5, (32, 32))
        assert 0 <= rows.start < rows.stop <= 32
        assert 0 <= cols.start < cols.stop <= 32


class TestGridSolver:
    def test_no_power_gives_ambient_everywhere(self):
        solver = GridThermalSolver(ThermalSolverConfig(grid_rows=8, grid_cols=8))
        field = solver.solve(np.zeros((8, 8)))
        np.testing.assert_allclose(field, solver.config.ambient_temperature_k, rtol=1e-9)

    def test_point_source_peaks_at_source_and_decays(self):
        solver = GridThermalSolver(ThermalSolverConfig(grid_rows=16, grid_cols=16))
        power = np.zeros((16, 16))
        power[8, 8] = 0.05
        rise = solver.temperature_rise(power)
        assert rise[8, 8] == rise.max()
        assert rise[8, 8] > 2 * rise[0, 0]
        assert np.all(rise >= -1e-9)

    def test_superposition_of_linear_system(self):
        solver = GridThermalSolver(ThermalSolverConfig(grid_rows=10, grid_cols=10))
        p1 = np.zeros((10, 10)); p1[2, 2] = 0.01
        p2 = np.zeros((10, 10)); p2[7, 7] = 0.02
        combined = solver.temperature_rise(p1 + p2)
        separate = solver.temperature_rise(p1) + solver.temperature_rise(p2)
        np.testing.assert_allclose(combined, separate, atol=1e-9)

    def test_energy_balance(self):
        """Total power injected equals total power sunk to ambient."""
        config = ThermalSolverConfig(grid_rows=12, grid_cols=12)
        solver = GridThermalSolver(config)
        power = np.zeros((12, 12))
        power[3, 4] = 0.03
        rise = solver.temperature_rise(power)
        sunk = config.cell_sink_conductance_w_per_k * rise.sum()
        assert sunk == pytest.approx(power.sum(), rel=1e-6)

    def test_rejects_invalid_power_maps(self):
        solver = GridThermalSolver()
        with pytest.raises(ValueError):
            solver.solve(np.zeros(5))
        with pytest.raises(ValueError):
            solver.solve(-np.ones((4, 4)))

    def test_factorization_reused_across_power_maps(self):
        """Repeated solves on one grid shape reuse a single factorization."""
        solver = GridThermalSolver(ThermalSolverConfig(grid_rows=12, grid_cols=12))
        p1 = np.zeros((12, 12)); p1[3, 3] = 0.02
        p2 = np.zeros((12, 12)); p2[8, 8] = 0.05
        first = solver.solve(p1)
        assert list(solver._solver_cache) == [(12, 12)]
        factorization = solver._solver_cache[(12, 12)]
        solver.solve(p2)
        solver.solve(np.zeros((6, 6)))  # second shape gets its own entry
        assert solver._solver_cache[(12, 12)] is factorization
        assert set(solver._solver_cache) == {(12, 12), (6, 6)}
        np.testing.assert_allclose(solver.solve(p1), first, rtol=0, atol=0)

    def test_matches_dense_reference_solution(self):
        """The vectorized assembly solves the same balance as a dense reference."""
        config = ThermalSolverConfig(grid_rows=5, grid_cols=4)
        solver = GridThermalSolver(config)
        rows, cols = 5, 4
        k_lat = config.lateral_conductance_w_per_k
        g_sink = config.die_sink_conductance_w_per_k / (rows * cols)
        dense = np.zeros((rows * cols, rows * cols))
        for r in range(rows):
            for c in range(cols):
                i = r * cols + c
                dense[i, i] = g_sink
                for dr, dc in ((-1, 0), (1, 0), (0, -1), (0, 1)):
                    rr, cc = r + dr, c + dc
                    if 0 <= rr < rows and 0 <= cc < cols:
                        dense[i, rr * cols + cc] = -k_lat
                        dense[i, i] += k_lat
        power = np.linspace(0, 0.01, rows * cols).reshape(rows, cols)
        rhs = power.ravel() + g_sink * config.ambient_temperature_k
        expected = np.linalg.solve(dense, rhs).reshape(rows, cols)
        np.testing.assert_allclose(solver.solve(power), expected, rtol=1e-9)


class TestHotspotHeatmap:
    def test_attacked_banks_are_hottest(self):
        plan = Floorplan(num_banks=100, banks_per_row=10)
        result = simulate_hotspot_attack(plan, attacked_banks=[44, 77])
        rises = result.bank_temperature_rise_k
        hottest = set(np.argsort(rises)[-2:])
        assert hottest == {44, 77}
        assert result.peak_rise_k > 10.0

    def test_neighbours_heated_less_than_target_more_than_far(self):
        plan = Floorplan(num_banks=100, banks_per_row=10)
        result = simulate_hotspot_attack(plan, attacked_banks=[55])
        rises = result.bank_temperature_rise_k
        assert rises[55] > rises[56] > rises[0]

    def test_affected_banks_threshold(self):
        plan = Floorplan(num_banks=64, banks_per_row=8)
        result = simulate_hotspot_attack(plan, attacked_banks=[27])
        affected = result.affected_banks(5.0)
        assert 27 in affected
        assert len(affected) < 64

    def test_ascii_heatmap_renders(self):
        plan = Floorplan(num_banks=16, banks_per_row=4)
        result = simulate_hotspot_attack(plan, attacked_banks=[5])
        art = result.ascii_heatmap(width=32)
        assert "@" in art
        assert len(art.splitlines()) > 2

    def test_rejects_out_of_range_banks(self):
        plan = Floorplan(num_banks=4, banks_per_row=2)
        with pytest.raises(ValidationError):
            simulate_hotspot_attack(plan, attacked_banks=[10])

    def test_more_heater_power_more_heat(self):
        plan = Floorplan(num_banks=25, banks_per_row=5)
        low = simulate_hotspot_attack(plan, attacked_banks=[12], heater_power_mw=100)
        high = simulate_hotspot_attack(plan, attacked_banks=[12], heater_power_mw=300)
        assert high.peak_rise_k > low.peak_rise_k
