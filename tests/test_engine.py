"""Tests for the campaign engine (specs, cache, executors, campaign, CLI)."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.engine import (
    Campaign,
    ProcessPoolRunExecutor,
    ResultCache,
    RunRecord,
    RunSpec,
    SerialExecutor,
    SweepSpec,
    execute_run,
    make_executor,
    run_all,
    spec_fingerprint,
)
from repro.engine.cli import main as cli_main
from repro.engine.cli import parse_axis, parse_value
from repro.utils.validation import ValidationError


class TestRunSpec:
    def test_fingerprint_is_order_independent(self):
        a = RunSpec("ablation_tuning", params={"x": 1, "y": 2})
        b = RunSpec("ablation_tuning", params={"y": 2, "x": 1})
        assert spec_fingerprint(a, "1.0") == spec_fingerprint(b, "1.0")

    def test_fingerprint_changes_with_version_params_and_seed(self):
        spec = RunSpec("ablation_tuning", params={"x": 1})
        base = spec_fingerprint(spec, "1.0")
        assert spec_fingerprint(spec, "2.0") != base
        assert spec_fingerprint(RunSpec("ablation_tuning", params={"x": 2}), "1.0") != base
        assert spec_fingerprint(RunSpec("ablation_tuning", {"x": 1}, seed=1), "1.0") != base

    def test_rejects_seed_in_params_and_unserializable_params(self):
        with pytest.raises(ValidationError):
            RunSpec("fig7_point", params={"seed": 3})
        with pytest.raises(ValidationError):
            RunSpec("fig7_point", params={"fn": object()})


class TestSweepSpec:
    def test_cartesian_expansion_order_and_count(self):
        sweep = SweepSpec(
            experiment_id="fig7_point",
            grid={"kind": ["actuation", "hotspot"], "fraction": [0.01, 0.05]},
            seeds=(0, 1),
        )
        specs = sweep.expand()
        assert sweep.num_points == len(specs) == 8
        assert [s.seed for s in specs[:2]] == [0, 1]
        assert specs[0].params["kind"] == "actuation"
        assert specs[-1].params == specs[-2].params  # seeds replicate points
        # Expansion resolves defaults, so every point carries the full params.
        assert specs[0].params["block"] == "both"
        assert "seed" not in specs[0].params

    def test_zip_axes_advance_together(self):
        sweep = SweepSpec(
            experiment_id="fig8_variant",
            zipped={"variant": ["Original", "l2+n3"], "num_placements": [1, 2]},
        )
        specs = sweep.expand()
        assert len(specs) == 2
        assert specs[0].params["variant"] == "Original"
        assert specs[0].params["num_placements"] == 1
        assert specs[1].params["variant"] == "l2+n3"
        assert specs[1].params["num_placements"] == 2

    def test_validation_failures(self):
        with pytest.raises(ValidationError):
            SweepSpec("fig7_point", grid={"kind": []})
        with pytest.raises(ValidationError):
            SweepSpec("fig7_point", zipped={"a": [1, 2], "b": [1]})
        with pytest.raises(ValidationError):
            SweepSpec("fig7_point", base={"kind": "hotspot"}, grid={"kind": ["hotspot"]})
        with pytest.raises(ValidationError):
            SweepSpec("fig7_point", seeds=())
        with pytest.raises(KeyError):
            SweepSpec("fig7_point", grid={"not_a_param": [1]}).expand()
        with pytest.raises(KeyError):
            SweepSpec("no_such_experiment", grid={"x": [1]}).expand()
        with pytest.raises(ValidationError):
            SweepSpec("fig7_point", grid={"seed": [0, 1]}).expand()

    def test_expand_without_validation_keeps_raw_params(self):
        specs = SweepSpec("anything", grid={"x": [1]}).expand(validate=False)
        assert specs[0].params == {"x": 1}


class TestResultCache:
    def _record(self, spec: RunSpec, cache: ResultCache) -> RunRecord:
        return RunRecord(
            fingerprint=cache.fingerprint(spec),
            spec=spec,
            payload={"value": 42},
            duration_s=0.5,
            started_at="2026-07-29T00:00:00+00:00",
            provenance={"version": cache.version, "executor": "serial", "pid": 1},
        )

    def test_put_get_roundtrip_marks_cached(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = RunSpec("ablation_tuning", params={"shifts_nm": [0.2]})
        assert cache.get(spec) is None
        cache.put(self._record(spec, cache))
        hit = cache.get(spec)
        assert hit is not None and hit.cached
        assert dict(hit.payload) == {"value": 42}
        assert hit.spec == spec

    def test_version_change_invalidates(self, tmp_path):
        spec = RunSpec("ablation_tuning")
        cache_v1 = ResultCache(tmp_path, version="1.0.0")
        cache_v1.put(self._record(spec, cache_v1))
        assert cache_v1.get(spec) is not None
        cache_v2 = ResultCache(tmp_path, version="2.0.0")
        assert cache_v2.get(spec) is None  # addressed under a new fingerprint

    def test_invalidate_and_clear(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = RunSpec("ablation_tuning")
        cache.put(self._record(spec, cache))
        assert cache.invalidate(spec) is True
        assert cache.invalidate(spec) is False
        cache.put(self._record(spec, cache))
        assert cache.clear() == 1
        assert cache.get(spec) is None

    def test_corrupt_entries_are_misses(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = RunSpec("ablation_tuning")
        path = cache.path_for(spec)
        path.parent.mkdir(parents=True)
        path.write_text("{not json")
        assert cache.get(spec) is None

    def test_refuses_to_cache_failures(self, tmp_path):
        cache = ResultCache(tmp_path)
        spec = RunSpec("ablation_tuning")
        record = RunRecord(
            fingerprint=cache.fingerprint(spec), spec=spec, status="error", error="boom"
        )
        with pytest.raises(ValueError):
            cache.put(record)


class TestExecutors:
    def test_execute_run_captures_failures(self):
        record = execute_run(RunSpec("no_such_experiment"))
        assert not record.ok
        assert "unknown experiment" in (record.error or "")
        assert record.payload == {}

    def test_make_executor_knob(self):
        assert isinstance(make_executor(None), SerialExecutor)
        assert isinstance(make_executor(1), SerialExecutor)
        assert isinstance(make_executor("serial"), SerialExecutor)
        pool = make_executor(3)
        assert isinstance(pool, ProcessPoolRunExecutor)
        assert pool.max_workers == 3
        with pytest.raises(ValidationError):
            make_executor(-2)

    def test_run_all_preserves_spec_order(self):
        specs = [
            RunSpec("ablation_tuning", params={"shifts_nm": [shift]})
            for shift in (0.2, 0.5, 1.0)
        ]
        records = run_all(SerialExecutor(), specs)
        assert [r.spec for r in records] == specs
        assert all(r.ok for r in records)

    def test_serial_and_pool_records_are_byte_identical(self):
        """Guards the per-worker RNG plumbing: same seeds => same payloads."""
        sweep = SweepSpec(
            experiment_id="fig7_point",
            grid={"kind": ["actuation", "hotspot"], "placement": [0, 1]},
            base={"fraction": 0.10},
            seeds=(0,),
        )
        specs = sweep.expand()
        serial = run_all(SerialExecutor(), specs)
        pooled = run_all(ProcessPoolRunExecutor(max_workers=2), specs)
        assert [r.canonical_payload() for r in serial] == [
            r.canonical_payload() for r in pooled
        ]
        assert all(r.ok for r in serial)
        assert {r.provenance["executor"] for r in pooled} == {"process-pool"}


class TestCampaign:
    def test_registry_roundtrip_through_campaign(self, tmp_path):
        """Registry experiments run through Campaign and hit the cache on repeat."""
        specs = [
            RunSpec("table1"),
            RunSpec("ablation_tuning", params={"shifts_nm": [0.2, 2.0]}),
            RunSpec("fig6", params={"attacked_banks": [650, 1260]}),
        ]
        first = Campaign(specs, cache=tmp_path).run()
        assert first.executed == 3 and first.cache_hits == 0 and first.failures == 0
        assert first.records[0].payload["rows"]
        assert first.records[2].payload["peak_rise_k"] > 0

        second = Campaign(specs, cache=tmp_path).run()
        assert second.executed == 0 and second.cache_hits == 3
        assert [dict(r.payload) for r in second.records] == [
            dict(r.payload) for r in first.records
        ]

    def test_progress_events_and_failure_accounting(self, tmp_path):
        events = []
        specs = [RunSpec("table1"), RunSpec("no_such_experiment")]
        result = Campaign(
            specs, cache=tmp_path, progress=events.append
        ).run()
        assert result.failures == 1
        assert len(events) == 2
        assert events[-1].total == 2
        assert any("ERROR" in event.message for event in events)
        # Failed runs are not cached: re-running retries them.
        again = Campaign(specs, cache=tmp_path).run()
        assert again.cache_hits == 1 and again.executed == 1

    def test_campaign_without_cache(self):
        result = Campaign([RunSpec("table1")]).run()
        assert result.executed == 1 and result.cache_hits == 0


class TestCli:
    def test_parse_value_and_axis(self):
        assert parse_value("0.05") == 0.05
        assert parse_value("true") is True
        assert parse_value("hotspot") == "hotspot"
        assert parse_axis("kind=actuation,hotspot") == ("kind", ["actuation", "hotspot"])
        assert parse_axis("fraction=0.01,0.1") == ("fraction", [0.01, 0.1])
        assert parse_axis("model=cnn_mnist") == ("model", ["cnn_mnist"])

    def test_cli_list_smoke(self, capsys):
        assert cli_main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7_point" in out and "Table I" in out

    def test_cli_run_and_cache(self, tmp_path, capsys):
        argv = ["run", "ablation_tuning", "--json", "--cache-dir", str(tmp_path)]
        assert cli_main(argv) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "total_power_w" in payload
        assert cli_main(argv) == 0  # second run served from cache
        assert json.loads(capsys.readouterr().out) == payload

    def test_cli_run_unknown_experiment_fails(self, tmp_path, capsys):
        assert cli_main(["run", "fig42", "--cache-dir", str(tmp_path)]) == 1
        assert "unknown experiment" in capsys.readouterr().err

    def test_cli_sweep_and_report(self, tmp_path, capsys):
        argv = [
            "sweep", "ablation_tuning",
            "--grid", "shifts_nm=[0.2],[2.0]",
            "--serial", "--json", "--cache-dir", str(tmp_path),
        ]
        assert cli_main(argv) == 0
        output = json.loads(capsys.readouterr().out)
        assert output["summary"]["points"] == 2
        assert output["summary"]["executed"] == 2
        assert cli_main(argv) == 0
        assert json.loads(capsys.readouterr().out)["summary"]["cache_hits"] == 2
        assert cli_main(["report", "--cache-dir", str(tmp_path)]) == 0
        report_out = capsys.readouterr().out
        assert "ablation_tuning" in report_out
        assert "min_s" in report_out and "mean_s" in report_out and "max_s" in report_out

    def test_cli_report_surfaces_run_timing(self, tmp_path, capsys):
        argv = [
            "sweep", "ablation_tuning",
            "--grid", "shifts_nm=[0.2],[1.0],[2.0]",
            "--serial", "--quiet", "--cache-dir", str(tmp_path),
        ]
        assert cli_main(argv) == 0
        capsys.readouterr()
        assert cli_main(["report", "--json", "--cache-dir", str(tmp_path)]) == 0
        stats = json.loads(capsys.readouterr().out)["experiments"]["ablation_tuning"]
        assert stats["records"] == 3
        assert 0.0 <= stats["min_duration_s"] <= stats["mean_duration_s"]
        assert stats["mean_duration_s"] <= stats["max_duration_s"]
        assert stats["total_duration_s"] == pytest.approx(
            3 * stats["mean_duration_s"]
        )

    def test_cli_bench_smoke(self, tmp_path, capsys):
        """Tiny bench run: JSON record written with speedups and agreement."""
        output = tmp_path / "bench.json"
        argv = [
            "bench", "--matvec-size", "6", "--mc-size", "6", "--trials", "8",
            "--repeats", "1", "--output", str(output), "--json",
        ]
        assert cli_main(argv) == 0
        results = json.loads(capsys.readouterr().out)
        assert results["equivalent_within_tol"] is True
        assert results["matvec"]["speedup_array_vs_seed"] > 0
        assert results["monte_carlo"]["speedup_array_vs_seed"] > 0
        on_disk = json.loads(output.read_text())
        assert on_disk["benchmark"] == "signal_core"

    def test_python_dash_m_repro_entrypoint(self):
        """``python -m repro list`` works as a real subprocess."""
        repo_src = Path(__file__).resolve().parents[1] / "src"
        env = dict(os.environ)
        env["PYTHONPATH"] = f"{repo_src}{os.pathsep}{env.get('PYTHONPATH', '')}"
        proc = subprocess.run(
            [sys.executable, "-m", "repro", "list"],
            capture_output=True, text=True, env=env, timeout=120,
        )
        assert proc.returncode == 0, proc.stderr
        assert "fig7_point" in proc.stdout
