"""Tests for scenario-batched attacked inference.

The scenario-batch subsystem has three layers — the vectorized corruption
kernel (:func:`repro.attacks.injection.corrupted_state_batch`), the
ensemble-weight forward path (:mod:`repro.nn.ensemble` + the stacked-aware
layers) and the engine's chunked evaluation
(:meth:`AttackedInferenceEngine.accuracy_under_attacks`).  Each layer is
property-tested against the per-scenario reference path, which stays the
source of truth.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.accelerator import AcceleratorConfig, AttackedInferenceEngine, WeightMapping
from repro.attacks import (
    ActuationAttack,
    AttackOutcome,
    AttackSpec,
    BlockEffect,
    HotspotAttack,
    corrupted_state_batch,
    corrupted_state_dict,
)
from repro.attacks.injection import OFF_RESONANCE_MAGNITUDE
from repro.nn import stacked_state
from repro.nn.layers import BatchNorm2D, Conv2D, Linear, MaxPool2D
from repro.nn.models import build_model
from repro.photonics import constants
from repro.photonics.thermal_sensitivity import ThermalSensitivity
from repro.utils.validation import ValidationError


def _mixed_outcomes(config, seeds=(0, 1, 2, 3)):
    """A small grid of actuation + hotspot outcomes on both blocks."""
    outcomes = []
    for seed in seeds:
        outcomes.append(
            ActuationAttack(AttackSpec("actuation", "both", 0.1)).sample(config, seed=seed)
        )
        outcomes.append(
            HotspotAttack(AttackSpec("hotspot", "both", 0.1)).sample(config, seed=seed)
        )
    return outcomes


def _hotspot_outcome(block: str, bank_delta_t: dict[int, float], attacked=None):
    """Hand-placed hotspot outcome (no thermal solver)."""
    outcome = AttackOutcome(spec=AttackSpec("hotspot", block, 0.05))
    outcome.effects[block] = BlockEffect(
        bank_delta_t=dict(bank_delta_t),
        attacked_banks=tuple(attacked if attacked is not None else bank_delta_t),
    )
    return outcome


def _delta_for_channels(config, channels: float) -> float:
    """Temperature rise producing a resonance shift of ``channels`` spacings."""
    sensitivity = ThermalSensitivity()
    return sensitivity.temperature_for_shift(
        constants.C_BAND_CENTER_NM, channels * config.channel_spacing_nm
    )


class TestCorruptedStateBatch:
    @pytest.fixture
    def model_and_mapping(self, tiny_accelerator_config):
        model = build_model("cnn_mnist", profile="scaled", rng=0)
        mapping = WeightMapping(model, tiny_accelerator_config)
        return model, mapping

    def test_batch_rows_bit_identical_to_serial(self, model_and_mapping,
                                                tiny_accelerator_config):
        model, mapping = model_and_mapping
        outcomes = _mixed_outcomes(tiny_accelerator_config)
        stacked = corrupted_state_batch(model, mapping, outcomes)
        for index, outcome in enumerate(outcomes):
            serial = corrupted_state_dict(model, mapping, outcome)
            for mapped in mapping.parameters:
                np.testing.assert_array_equal(
                    stacked[mapped.name][index], serial[mapped.name],
                    err_msg=f"{mapped.name} scenario {index}",
                )

    def test_batch_contains_only_mapped_parameters(self, model_and_mapping,
                                                   tiny_accelerator_config):
        model, mapping = model_and_mapping
        outcome = _mixed_outcomes(tiny_accelerator_config, seeds=(0,))[0]
        stacked = corrupted_state_batch(model, mapping, [outcome])
        assert set(stacked) == {m.name for m in mapping.parameters}
        for mapped in mapping.parameters:
            assert stacked[mapped.name].shape == (1, *mapped.shape)

    def test_empty_outcome_list_rejected(self, model_and_mapping):
        model, mapping = model_and_mapping
        with pytest.raises(ValidationError):
            corrupted_state_batch(model, mapping, [])

    def test_base_state_not_mutated(self, model_and_mapping, tiny_accelerator_config):
        model, mapping = model_and_mapping
        clean = model.state_dict()
        snapshot = {k: v.copy() for k, v in clean.items()}
        outcomes = _mixed_outcomes(tiny_accelerator_config, seeds=(0, 1))
        corrupted_state_batch(model, mapping, outcomes, state=clean)
        corrupted_state_dict(model, mapping, outcomes[0], state=clean)
        for name in clean:
            np.testing.assert_array_equal(clean[name], snapshot[name])


class TestHotspotEdgeCases:
    """Re-pairing corner cases, asserted identical between both paths."""

    @pytest.fixture
    def model_and_mapping(self, tiny_accelerator_config):
        model = build_model("cnn_mnist", profile="scaled", rng=1)
        mapping = WeightMapping(model, tiny_accelerator_config)
        return model, mapping

    def _assert_paths_agree(self, model, mapping, outcomes):
        stacked = corrupted_state_batch(model, mapping, outcomes)
        for index, outcome in enumerate(outcomes):
            serial = corrupted_state_dict(model, mapping, outcome)
            for mapped in mapping.parameters:
                np.testing.assert_array_equal(
                    stacked[mapped.name][index], serial[mapped.name]
                )
        return stacked

    def test_whole_channel_shift_at_bank_boundary(self, model_and_mapping,
                                                  tiny_accelerator_config):
        """A k-channel shift re-pairs within the bank; the first k carriers die."""
        model, mapping = model_and_mapping
        config = tiny_accelerator_config
        geometry = config.conv_block
        shift_channels = 2
        delta = _delta_for_channels(config, shift_channels)
        outcome = _hotspot_outcome("conv", {0: delta})
        self._assert_paths_agree(model, mapping, [outcome])

        corrupted = corrupted_state_dict(model, mapping, outcome)
        for mapped in mapping.parameters_in_block("conv"):
            slots = mapping.slots_for(mapped)
            cols = slots % geometry.cols
            banks = slots // geometry.cols
            original = model.state_dict()[mapped.name].reshape(-1)
            changed = corrupted[mapped.name].reshape(-1)
            in_bank = banks == 0
            # Carriers below the shift lose their magnitude entirely.
            dead = in_bank & (cols < shift_channels)
            assert np.all(
                np.abs(changed[dead]) <= mapped.scale * OFF_RESONANCE_MAGNITUDE + 1e-6
            )
            # Re-paired carriers pick up the magnitude k positions earlier
            # (residual is zero for an exact whole-channel shift).
            repaired = np.flatnonzero(in_bank & (cols >= shift_channels))
            np.testing.assert_allclose(
                np.abs(changed[repaired]),
                np.abs(original[repaired - shift_channels]),
                atol=1e-6,
            )

    def test_shift_of_full_bank_width_kills_the_bank(self, model_and_mapping,
                                                     tiny_accelerator_config):
        """``k >= cols`` pushes every ring of the bank past its carrier comb."""
        model, mapping = model_and_mapping
        config = tiny_accelerator_config
        geometry = config.fc_block
        delta = _delta_for_channels(config, geometry.cols)
        outcome = _hotspot_outcome("fc", {1: delta})
        self._assert_paths_agree(model, mapping, [outcome])

        corrupted = corrupted_state_dict(model, mapping, outcome)
        for mapped in mapping.parameters_in_block("fc"):
            banks = mapping.slots_for(mapped) // geometry.cols
            changed = corrupted[mapped.name].reshape(-1)
            in_bank = banks == 1
            assert np.all(
                np.abs(changed[in_bank]) <= mapped.scale * OFF_RESONANCE_MAGNITUDE + 1e-6
            )

    def test_mixed_actuation_and_hotspot_on_same_bank(self, model_and_mapping,
                                                      tiny_accelerator_config):
        """Actuated rings go dark first; the shift then re-pairs the dark slot."""
        model, mapping = model_and_mapping
        config = tiny_accelerator_config
        geometry = config.conv_block
        delta = _delta_for_channels(config, 1)
        outcome = _hotspot_outcome("conv", {2: delta})
        # Actuate the first two slots of the heated bank.
        outcome.effect("conv").slots_off = np.array(
            [2 * geometry.cols, 2 * geometry.cols + 1]
        )
        self._assert_paths_agree(model, mapping, [outcome])

        corrupted = corrupted_state_dict(model, mapping, outcome)
        for mapped in mapping.parameters_in_block("conv"):
            slots = mapping.slots_for(mapped)
            cols = slots % geometry.cols
            banks = slots // geometry.cols
            changed = corrupted[mapped.name].reshape(-1)
            # Carrier 1 of the heated bank re-pairs with the actuated ring 0,
            # so it couples the off-resonance floor, not its programmed value.
            repaired_from_actuated = (banks == 2) & (cols == 1)
            assert np.all(
                np.abs(changed[repaired_from_actuated])
                <= mapped.scale * OFF_RESONANCE_MAGNITUDE + 1e-6
            )

    def test_fractional_shift_scales_by_lorentzian(self, model_and_mapping,
                                                   tiny_accelerator_config):
        model, mapping = model_and_mapping
        config = tiny_accelerator_config
        delta = _delta_for_channels(config, 0.25)
        outcome = _hotspot_outcome("conv", {0: delta})
        stacked = self._assert_paths_agree(model, mapping, [outcome])
        mapped = mapping.parameters_in_block("conv")[0]
        banks = mapping.slots_for(mapped) // config.conv_block.cols
        original = np.abs(model.state_dict()[mapped.name].reshape(-1))
        changed = np.abs(stacked[mapped.name][0].reshape(-1))
        in_bank = (banks == 0) & (original > 1e-4)
        ratio = changed[in_bank] / original[in_bank]
        residual_nm = 0.25 * config.channel_spacing_nm
        linewidth_nm = constants.C_BAND_CENTER_NM / config.q_factor
        expected = 1.0 / (1.0 + (2.0 * residual_nm / linewidth_nm) ** 2)
        np.testing.assert_allclose(ratio, expected, atol=1e-5)


class TestNegativeShiftGuard:
    def _negative_sensitivity(self) -> ThermalSensitivity:
        """A (physically exotic) negative-dn/dT sensitivity, bypassing validation."""
        sensitivity = ThermalSensitivity.__new__(ThermalSensitivity)
        object.__setattr__(sensitivity, "confinement_factor",
                           constants.SILICON_CONFINEMENT_FACTOR)
        object.__setattr__(sensitivity, "thermo_optic_coeff",
                           -constants.SILICON_THERMO_OPTIC_COEFF)
        object.__setattr__(sensitivity, "group_index", constants.SILICON_GROUP_INDEX)
        return sensitivity

    def test_negative_coefficient_rejected_at_construction(self):
        with pytest.raises(ValidationError):
            ThermalSensitivity(thermo_optic_coeff=-1.8e-4)

    def test_serial_injection_rejects_negative_shift(self, tiny_accelerator_config):
        model = build_model("cnn_mnist", profile="scaled", rng=0)
        mapping = WeightMapping(model, tiny_accelerator_config)
        outcome = _hotspot_outcome("conv", {0: 20.0})
        with pytest.raises(ValidationError, match="negative thermally induced"):
            corrupted_state_dict(
                model, mapping, outcome, sensitivity=self._negative_sensitivity()
            )

    def test_batch_injection_rejects_negative_shift(self, tiny_accelerator_config):
        model = build_model("cnn_mnist", profile="scaled", rng=0)
        mapping = WeightMapping(model, tiny_accelerator_config)
        outcome = _hotspot_outcome("conv", {0: 20.0})
        with pytest.raises(ValidationError, match="negative thermally induced"):
            corrupted_state_batch(
                model, mapping, [outcome], sensitivity=self._negative_sensitivity()
            )


class TestEnsembleForward:
    def test_stacked_logits_match_serial_forwards(self, tiny_accelerator_config):
        model = build_model("cnn_mnist", profile="scaled", rng=0).eval()
        mapping = WeightMapping(model, tiny_accelerator_config)
        outcomes = _mixed_outcomes(tiny_accelerator_config, seeds=(0, 1))
        stacked = corrupted_state_batch(model, mapping, outcomes)
        x = np.random.default_rng(0).random((5, 1, 28, 28)).astype(np.float32)
        with stacked_state(model, stacked):
            batched = model(x)
        assert batched.shape == (len(outcomes), 5, 10)
        clean = model.state_dict()
        for index, outcome in enumerate(outcomes):
            model.load_state_dict(
                corrupted_state_dict(model, mapping, outcome, state=clean)
            )
            np.testing.assert_array_equal(batched[index], model(x))
        model.load_state_dict(clean)

    def test_singleton_rows_broadcast_against_stacked_layers(self):
        model = build_model("cnn_mnist", profile="scaled", rng=0).eval()
        params = dict(model.named_parameters())
        fc_name = next(n for n, p in params.items() if p.kind == "fc")
        stacked = {
            name: np.repeat(param.data[None], 3 if name == fc_name else 1, axis=0)
            for name, param in params.items()
            if param.kind in ("conv", "fc")
        }
        x = np.random.default_rng(1).random((4, 1, 28, 28)).astype(np.float32)
        reference = model(x)
        with stacked_state(model, stacked):
            out = model(x)
        assert out.shape == (3, 4, 10)
        for index in range(3):
            np.testing.assert_array_equal(out[index], reference)

    def test_stacked_state_cleared_after_context(self):
        model = build_model("cnn_mnist", profile="scaled", rng=0).eval()
        stacked = {
            name: param.data[None]
            for name, param in model.named_parameters()
            if param.kind in ("conv", "fc")
        }
        with stacked_state(model, stacked):
            assert model.has_stacked_state()
        assert not model.has_stacked_state()
        x = np.random.default_rng(2).random((2, 1, 28, 28)).astype(np.float32)
        assert model(x).shape == (2, 10)

    def test_load_stacked_state_validation(self):
        model = build_model("cnn_mnist", profile="scaled", rng=0)
        params = dict(model.named_parameters())
        conv_names = [n for n, p in params.items() if p.kind == "conv"]
        with pytest.raises(KeyError):
            model.load_stacked_state({"nope": np.zeros((2, 3))})
        with pytest.raises(ValueError):
            model.load_stacked_state({conv_names[0]: np.zeros((2, 3, 3))})
        with pytest.raises(ValueError):
            model.load_stacked_state({
                conv_names[0]: np.repeat(params[conv_names[0]].data[None], 2, axis=0),
                conv_names[1]: np.repeat(params[conv_names[1]].data[None], 3, axis=0),
            })

    def test_backward_after_ensemble_forward_raises(self):
        rng = np.random.default_rng(3)
        linear = Linear(6, 4, rng=0)
        linear.weight.stacked = np.repeat(linear.weight.data[None], 2, axis=0)
        out = linear(rng.random((3, 6)).astype(np.float32))
        assert out.shape == (2, 3, 4)
        with pytest.raises(RuntimeError):
            linear.backward(np.ones((3, 4), dtype=np.float32))

        conv = Conv2D(2, 3, kernel_size=3, padding=1, rng=0)
        conv.weight.stacked = np.repeat(conv.weight.data[None], 2, axis=0)
        out = conv(rng.random((2, 2, 8, 8)).astype(np.float32))
        assert out.shape == (2, 2, 3, 8, 8)
        with pytest.raises(RuntimeError):
            conv.backward(np.ones((2, 3, 8, 8), dtype=np.float32))

    def test_batchnorm_rejects_stacked_training_input(self):
        bn = BatchNorm2D(4)
        stacked = np.random.default_rng(4).random((2, 3, 4, 5, 5)).astype(np.float32)
        bn.train()
        with pytest.raises(RuntimeError):
            bn(stacked)
        bn.eval()
        out = bn(stacked)
        assert out.shape == stacked.shape

    def test_maxpool_fast_path_matches_im2col_path(self):
        rng = np.random.default_rng(5)
        pool = MaxPool2D(2)
        x = rng.random((3, 4, 2, 8, 8)).astype(np.float32)
        fast = pool(x)
        per_scenario = np.stack([pool(x[i]) for i in range(3)])
        np.testing.assert_array_equal(fast, per_scenario)


class TestEngineScenarioBatch:
    @pytest.fixture(scope="class")
    def engine_and_data(self, trained_mnist_model, mnist_split,
                        scaled_accelerator_config):
        engine = AttackedInferenceEngine(trained_mnist_model, scaled_accelerator_config)
        return engine, mnist_split.test

    @pytest.fixture(scope="class")
    def outcomes(self, scaled_accelerator_config):
        config = scaled_accelerator_config
        outcomes = _mixed_outcomes(config, seeds=(0, 1))
        outcomes += [
            ActuationAttack(AttackSpec("actuation", "fc", 0.1)).sample(config, seed=7),
            HotspotAttack(AttackSpec("hotspot", "fc", 0.2)).sample(config, seed=8),
            ActuationAttack(AttackSpec("actuation", "conv", 0.1)).sample(config, seed=9),
        ]
        return outcomes

    def test_batched_accuracies_match_reference(self, engine_and_data, outcomes):
        engine, dataset = engine_and_data
        serial = np.array(
            [engine.accuracy_under_attack(dataset, outcome) for outcome in outcomes]
        )
        batched = engine.accuracy_under_attacks(dataset, outcomes)
        np.testing.assert_array_equal(batched, serial)

    def test_chunking_preserves_scenario_order(self, engine_and_data, outcomes):
        engine, dataset = engine_and_data
        full = engine.accuracy_under_attacks(dataset, outcomes)
        chunked = engine.accuracy_under_attacks(dataset, outcomes, scenario_chunk=2)
        np.testing.assert_array_equal(full, chunked)

    def test_empty_outcome_list(self, engine_and_data):
        engine, dataset = engine_and_data
        assert engine.accuracy_under_attacks(dataset, []).size == 0

    def test_corruption_fractions_match_reference(self, engine_and_data, outcomes):
        engine, dataset = engine_and_data
        batched = engine.weight_corruption_fractions(outcomes)
        clean = engine.model.state_dict()
        total = sum(m.size for m in engine.mapping.parameters)
        for outcome, fraction in zip(outcomes, batched):
            corrupted = engine.corrupted_weights(outcome)
            changed = sum(
                int(np.count_nonzero(
                    np.abs(corrupted[m.name] - clean[m.name]) > 1e-7
                ))
                for m in engine.mapping.parameters
            )
            assert fraction == pytest.approx(changed / total)

    def test_attack_context_restores_cached_clean_state(self, engine_and_data,
                                                        outcomes):
        engine, dataset = engine_and_data
        before = {k: v.copy() for k, v in engine.model.state_dict().items()}
        engine.accuracy_under_attack(dataset, outcomes[0])
        engine.accuracy_under_attacks(dataset, outcomes[:2])
        after = engine.model.state_dict()
        for name in before:
            np.testing.assert_array_equal(before[name], after[name])

    def test_clean_scenario_broadcasts(self, engine_and_data):
        """An outcome that touches nothing reproduces the clean accuracy."""
        engine, dataset = engine_and_data
        empty = AttackOutcome(spec=AttackSpec("actuation", "both", 0.01))
        accuracies = engine.accuracy_under_attacks(dataset, [empty])
        # The clean model round-trips through normalize/denormalize, so
        # compare against the per-scenario path, not clean_accuracy().
        assert accuracies[0] == engine.accuracy_under_attack(dataset, empty)


class TestStudyIntegration:
    def test_susceptibility_backends_agree(self, trained_mnist_model, mnist_split):
        from repro.analysis.susceptibility import (
            SusceptibilityConfig,
            SusceptibilityStudy,
        )

        prepared = {"cnn_mnist": (trained_mnist_model, mnist_split)}
        results = {}
        for batch in (True, False):
            config = SusceptibilityConfig.quick(scenario_batch=batch)
            results[batch] = SusceptibilityStudy(config).run(prepared=prepared)
        batched, serial = results[True], results[False]
        assert batched.baselines == serial.baselines
        assert len(batched.scenarios) == len(serial.scenarios)
        for a, b in zip(batched.scenarios, serial.scenarios):
            assert a.key() == b.key() and a.placement == b.placement
            assert a.accuracy == b.accuracy
            assert a.corrupted_fraction == pytest.approx(b.corrupted_fraction)
