"""Benchmark: scenario-batched vs per-scenario attacked inference.

Times quick Fig. 7 scenario grids through both evaluation paths of the
attacked-inference engine (the per-scenario reference and the stacked
ensemble-forward path in :mod:`repro.nn.ensemble`), checks that the batched
accuracies match the per-scenario reference within 1e-9 for every scenario,
and emits ``BENCH_scenario_batch.json``.

Run directly (``python benchmarks/bench_scenario_batch.py [output.json]``) or
via the CLI (``python -m repro bench --suite scenario``); a pytest-benchmark
entry point is provided for the opt-in benchmark suite.  The acceptance floor
is >=20x on the FC-column sweep (shared conv trunk across scenarios).
"""

from __future__ import annotations

import sys

DEFAULT_OUTPUT = "BENCH_scenario_batch.json"


def test_scenario_batch_speedup(benchmark):
    """Scenario-batch speedup over the per-scenario path (opt-in bench suite)."""
    from repro.analysis.scenario_batch_bench import run_scenario_batch_bench

    results = benchmark.pedantic(
        lambda: run_scenario_batch_bench(output=DEFAULT_OUTPUT),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["fc_grid_speedup"] = results["fc_grid"][
        "speedup_batched_vs_serial"
    ]
    benchmark.extra_info["mixed_grid_speedup"] = results["mixed_grid"][
        "speedup_batched_vs_serial"
    ]
    assert results["equivalent_within_tol"]
    assert results["fc_grid"]["speedup_batched_vs_serial"] >= 20.0
    assert results["mixed_grid"]["speedup_batched_vs_serial"] >= 1.0


def main(argv: list[str]) -> int:
    from repro.analysis.scenario_batch_bench import (
        format_scenario_bench_report,
        run_scenario_batch_bench,
    )

    output = argv[0] if argv else DEFAULT_OUTPUT
    results = run_scenario_batch_bench(output=output)
    print(format_scenario_bench_report(results))
    print(f"\nwrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
