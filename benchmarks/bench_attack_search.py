"""Benchmark: black-box attack search vs the fixed Cartesian attack grid.

Times cache-less candidate evaluation through the stacked in-process path vs
the serial campaign executor (the backends must produce byte-identical
trajectories), then runs every search optimizer at exactly the fixed grid's
scenario-evaluation budget and checks whether a searched Pareto front
dominates the grid's stealth/damage points.  Emits ``BENCH_search.json``.

Run directly (``python benchmarks/bench_attack_search.py [output.json]``) or
via the CLI (``python -m repro bench --suite search``); a pytest-benchmark
entry point is provided for the opt-in benchmark suite.  The acceptance
claim is ``any_dominates_grid``: at equal budget, at least one optimizer's
front beats the fixed grid for at least one attack kind.
"""

from __future__ import annotations

import sys

DEFAULT_OUTPUT = "BENCH_search.json"


def test_attack_search_vs_grid(benchmark):
    """Search-vs-grid quality at equal budget (opt-in bench suite)."""
    from repro.analysis.search_bench import run_attack_search_bench

    results = benchmark.pedantic(
        lambda: run_attack_search_bench(output=DEFAULT_OUTPUT),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["batched_candidates_per_s"] = results["throughput"][
        "batched_candidates_per_s"
    ]
    benchmark.extra_info["any_dominates_grid"] = results["any_dominates_grid"]
    assert results["backends_equivalent"]
    assert results["any_dominates_grid"]


def main(argv: list[str]) -> int:
    from repro.analysis.search_bench import (
        format_search_bench_report,
        run_attack_search_bench,
    )

    output = argv[0] if argv else DEFAULT_OUTPUT
    results = run_attack_search_bench(output=output)
    print(format_search_bench_report(results))
    print(f"\nwrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
