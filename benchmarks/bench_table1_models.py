"""Benchmark E-T1: regenerate the paper's Table I (CNN model parameters)."""

from __future__ import annotations

from repro.analysis.reporting import format_table1
from repro.nn.models import table1_rows


def test_table1_parameter_inventory(benchmark):
    """Build the full-scale models and count their conv/FC parameters."""

    def run():
        return table1_rows(include_measured=True)

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_table1(rows))
    for row in rows:
        measured = row["measured_total_parameters"]
        paper = row["paper_total_parameters"]
        benchmark.extra_info[f"{row['model']}_measured_total"] = measured
        benchmark.extra_info[f"{row['model']}_paper_total"] = paper
    # The CNN_1 and VGG16_v inventories should match the paper closely.
    by_model = {row["model"]: row for row in rows}
    assert by_model["CNN_1"]["measured_total_parameters"] == 44_180
    assert abs(by_model["VGG16_v"]["measured_total_parameters"] - 123_500_000) / 123_500_000 < 0.01
