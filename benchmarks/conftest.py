"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one of the paper's artefacts (Table I, Figs. 6-9)
or an ablation, using reduced-but-representative experiment settings so the
whole suite completes on a laptop CPU.  Results (the reproduced table rows /
figure series) are attached to the benchmark's ``extra_info`` so they appear
in the pytest-benchmark report.
"""

from __future__ import annotations

import pytest

from repro.accelerator.config import AcceleratorConfig
from repro.datasets import load_dataset, train_test_split
from repro.nn import Trainer, TrainingConfig
from repro.nn.models import build_model


@pytest.fixture(scope="session")
def accelerator_config():
    """Accelerator configuration used across the benchmark experiments."""
    return AcceleratorConfig.scaled_config()


@pytest.fixture(scope="session")
def trained_workloads():
    """Trained scaled models + dataset splits for all three workloads."""
    settings = {
        "cnn_mnist": ("mnist", 500, {}, {}, 4),
        "resnet18": ("cifar10", 350, {}, {}, 3),
        "vgg16_variant": ("imagenette", 400, {"image_size": 48}, {"image_size": 48}, 4),
    }
    workloads = {}
    for model_name, (dataset_name, samples, ds_kwargs, model_kwargs, epochs) in settings.items():
        dataset = load_dataset(dataset_name, num_samples=samples, seed=0, **ds_kwargs)
        split = train_test_split(dataset, 0.25, seed=1)
        model = build_model(model_name, profile="scaled", rng=0, **model_kwargs)
        Trainer(model, TrainingConfig(epochs=epochs, batch_size=32, lr=2e-3, seed=0)).fit(
            split.train
        )
        workloads[model_name] = (model, split)
    return workloads
