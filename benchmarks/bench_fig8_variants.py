"""Benchmark E-F8: regenerate the Fig. 8 mitigation-variant comparison.

The paper's Fig. 8 compares the Original model, L2_reg, and l2+n1..l2+n9
variants across all attack scenarios.  The benchmark sweeps a representative
subset of the variant grid (Original, L2_reg and three noise levels) through
the campaign engine — one ``fig8_variant`` run per variant, fanned out across
a process pool — and reports the box-plot statistics of their attacked
accuracies.
"""

from __future__ import annotations

import os

import numpy as np
import pytest

from repro.engine import Campaign, SweepSpec
from repro.mitigation.selection import select_most_robust

_VARIANTS = ("Original", "L2_reg", "l2+n2", "l2+n3", "l2+n5")
_WORKERS = int(os.environ.get("REPRO_FIG8_WORKERS", "4"))


@pytest.mark.parametrize("model_name", ["cnn_mnist"])
def test_fig8_variant_accuracy_distributions(benchmark, model_name, tmp_path):
    """Accuracy distribution per mitigation variant (one Fig. 8 panel)."""
    sweep = SweepSpec(
        experiment_id="fig8_variant",
        base={
            "model": model_name,
            "blocks": ["conv", "fc", "both"],
            "fractions": [0.01, 0.05, 0.10],
            "num_placements": 2,
        },
        grid={"variant": list(_VARIANTS)},
    )

    def run():
        return Campaign(sweep, cache=tmp_path / "campaign-cache", workers=_WORKERS).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.failures == 0
    payloads = {p["variant"]: p for p in result.payloads}
    assert set(payloads) == set(_VARIANTS)

    accuracy_by_variant = {
        variant: np.asarray(payload["accuracies"])
        for variant, payload in payloads.items()
    }
    best, _scores = select_most_robust(accuracy_by_variant)

    print()
    for variant in _VARIANTS:
        payload = payloads[variant]
        print(f"  {variant:<10} baseline {payload['baseline']:.3f}  "
              f"median {payload['median']:.3f}  min {payload['min']:.3f}")
    print(f"Most robust variant: {best}")

    benchmark.extra_info["best_variant"] = best
    benchmark.extra_info["campaign"] = result.summary()
    for variant, payload in payloads.items():
        benchmark.extra_info[f"{variant}_median"] = payload["median"]

    # Paper-shape checks: a mitigation variant is selected as the most robust
    # configuration, and its median attacked accuracy is at least that of the
    # original model.
    assert best != "Original"
    assert payloads[best]["median"] >= payloads["Original"]["median"] - 0.05
