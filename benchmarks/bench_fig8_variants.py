"""Benchmark E-F8: regenerate the Fig. 8 mitigation-variant comparison.

The paper's Fig. 8 compares the Original model, L2_reg, and l2+n1..l2+n9
variants across all attack scenarios.  The benchmark trains a representative
subset of the variant grid per workload (Original, L2_reg and three noise
levels) and reports the box-plot statistics of their attacked accuracies.
"""

from __future__ import annotations

import pytest

from repro.analysis.mitigation_analysis import MitigationAnalysisConfig, MitigationStudy
from repro.analysis.reporting import format_fig8_table
from repro.mitigation import L2Config, NoiseAwareConfig, VariantSpec

_VARIANTS = (
    VariantSpec(name="Original"),
    VariantSpec(name="L2_reg", l2=L2Config()),
    VariantSpec(name="l2+n2", l2=L2Config(), noise=NoiseAwareConfig(std=0.2)),
    VariantSpec(name="l2+n3", l2=L2Config(), noise=NoiseAwareConfig(std=0.3)),
    VariantSpec(name="l2+n5", l2=L2Config(), noise=NoiseAwareConfig(std=0.5)),
)


@pytest.mark.parametrize("model_name", ["cnn_mnist"])
def test_fig8_variant_accuracy_distributions(benchmark, model_name, accelerator_config):
    """Accuracy distribution per mitigation variant (one Fig. 8 panel)."""
    config = MitigationAnalysisConfig(
        model_names=(model_name,),
        variants=_VARIANTS,
        blocks=("conv", "fc", "both"),
        fractions=(0.01, 0.05, 0.10),
        num_placements=2,
        accelerator=accelerator_config,
        seed=0,
    )
    study = MitigationStudy(config)

    result = benchmark.pedantic(study.run, rounds=1, iterations=1)
    print()
    print(format_fig8_table(result.distributions, model_name))
    print(f"Most robust variant: {result.best_variant[model_name]}")

    benchmark.extra_info["best_variant"] = result.best_variant[model_name]
    for dist in result.distributions_for(model_name):
        benchmark.extra_info[f"{dist.variant}_median"] = float(
            sorted(dist.accuracies)[len(dist.accuracies) // 2]
        )

    # Paper-shape checks: a combined L2 + noise variant is selected as the most
    # robust configuration, and its median attacked accuracy is at least that
    # of the original model.
    best = result.best_variant[model_name]
    assert best != "Original"
    distributions = {d.variant: d for d in result.distributions_for(model_name)}
    import numpy as np

    assert np.median(distributions[best].accuracies) >= np.median(
        distributions["Original"].accuracies
    ) - 0.05
