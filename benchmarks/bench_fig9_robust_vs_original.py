"""Benchmark E-F9: regenerate the Fig. 9 robust-vs-original comparison.

Fig. 9 compares the most robust variant of each workload against the original
model under actuation and hotspot attacks covering 1/5/10% of the full
accelerator (CONV + FC).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis.mitigation_analysis import MitigationAnalysisConfig, MitigationStudy
from repro.analysis.reporting import format_fig9_table
from repro.mitigation import L2Config, NoiseAwareConfig, VariantSpec

_VARIANTS = (
    VariantSpec(name="Original"),
    VariantSpec(name="l2+n2", l2=L2Config(), noise=NoiseAwareConfig(std=0.2)),
    VariantSpec(name="l2+n3", l2=L2Config(), noise=NoiseAwareConfig(std=0.3)),
)


@pytest.mark.parametrize("model_name", ["cnn_mnist"])
def test_fig9_robust_vs_original(benchmark, model_name, accelerator_config):
    """Original vs. robust accuracy under CONV+FC attacks at 1/5/10%."""
    config = MitigationAnalysisConfig(
        model_names=(model_name,),
        variants=_VARIANTS,
        blocks=("both",),
        fractions=(0.01, 0.05, 0.10),
        num_placements=2,
        accelerator=accelerator_config,
        seed=0,
    )
    study = MitigationStudy(config)

    result = benchmark.pedantic(study.run, rounds=1, iterations=1)
    rows = result.comparison_for(model_name)
    print()
    print(format_fig9_table(rows, model_name))

    benchmark.extra_info["best_variant"] = result.best_variant[model_name]
    for row in rows:
        label = f"{row.kind}_{round(row.fraction * 100)}pct_recovery"
        benchmark.extra_info[label] = row.recovery

    # Paper-shape checks: under actuation attacks the robust model recovers
    # accuracy on average, and across the whole grid it is never dramatically
    # worse than the original model.
    actuation_rows = [row for row in rows if row.kind == "actuation"]
    assert actuation_rows
    mean_recovery = np.mean(
        [row.robust_accuracy_mean - row.original_accuracy_mean for row in actuation_rows]
    )
    assert mean_recovery > -0.02
    for row in rows:
        assert row.robust_accuracy_mean > row.original_accuracy_mean - 0.15
