"""Benchmark: stacked vs serial variant-grid training + checkpoint cache.

Times the paper's default 11-variant mitigation grid through the serial
reference (one ``Trainer.fit`` per variant) and the variant-stacked training
path (one stacked forward/backward per data batch for all variants), checks
that the two produce identical per-variant accuracies and weights, measures
the warm-vs-cold checkpoint-cache pipeline, and emits ``BENCH_training.json``.

Run directly (``python benchmarks/bench_training.py [output.json]``) or via
the CLI (``python -m repro bench --suite training``); a pytest-benchmark
entry point is provided for the opt-in benchmark suite.  The acceptance
floors are: strict stacked/serial equivalence, a warm checkpoint-cache
pipeline at >=3x over retraining (in practice two orders of magnitude), and
a warm study pass performing zero training steps.
"""

from __future__ import annotations

import sys

DEFAULT_OUTPUT = "BENCH_training.json"


def test_training_speedup(benchmark):
    """Stacked-grid equivalence + pipeline speedup (opt-in bench suite)."""
    from repro.analysis.training_bench import run_training_bench

    results = benchmark.pedantic(
        lambda: run_training_bench(output=DEFAULT_OUTPUT),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["stacked_speedup"] = results["speedup_stacked_vs_serial"]
    benchmark.extra_info["pipeline_speedup"] = results["speedup_pipeline_warm_cache"]
    assert results["equivalent_within_tol"]
    assert results["checkpoint_cache"]["warm_training_steps"] == 0
    assert results["speedup_pipeline_warm_cache"] >= 3.0


def main(argv: list[str]) -> int:
    from repro.analysis.training_bench import (
        format_training_bench_report,
        run_training_bench,
    )

    output = argv[0] if argv else DEFAULT_OUTPUT
    results = run_training_bench(output=output)
    print(format_training_bench_report(results))
    print(f"\nwrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
