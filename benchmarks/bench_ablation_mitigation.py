"""Ablation E-A1: L2-only vs noise-only vs combined mitigation.

Section V of the paper motivates using L2 regularization and Gaussian
noise-aware training *together*.  This ablation trains the MNIST workload with
each component alone and combined and compares their attacked-accuracy
distributions over the same attack grid.
"""

from __future__ import annotations

import numpy as np

from repro.analysis.mitigation_analysis import MitigationAnalysisConfig, MitigationStudy
from repro.analysis.reporting import format_fig8_table
from repro.mitigation import L2Config, NoiseAwareConfig, VariantSpec

_VARIANTS = (
    VariantSpec(name="Original"),
    VariantSpec(name="L2_only", l2=L2Config()),
    VariantSpec(name="noise_only_n3", noise=NoiseAwareConfig(std=0.3)),
    VariantSpec(name="l2+n3", l2=L2Config(), noise=NoiseAwareConfig(std=0.3)),
)


def test_ablation_mitigation_components(benchmark, accelerator_config):
    """Compare mitigation components in isolation and combined (CNN_1 workload)."""
    config = MitigationAnalysisConfig(
        model_names=("cnn_mnist",),
        variants=_VARIANTS,
        blocks=("both",),
        fractions=(0.05, 0.10),
        num_placements=2,
        accelerator=accelerator_config,
        seed=0,
    )
    study = MitigationStudy(config)

    result = benchmark.pedantic(study.run, rounds=1, iterations=1)
    print()
    print(format_fig8_table(result.distributions, "cnn_mnist"))

    medians = {
        dist.variant: float(np.median(dist.accuracies))
        for dist in result.distributions_for("cnn_mnist")
    }
    for variant, median in medians.items():
        benchmark.extra_info[f"{variant}_median"] = median

    # Shape check: at least one mitigation variant matches or beats the
    # original model's median attacked accuracy, and the combined variant is
    # competitive with the best single-component variant.
    assert max(medians["L2_only"], medians["noise_only_n3"], medians["l2+n3"]) >= (
        medians["Original"] - 0.03
    )
    assert medians["l2+n3"] >= min(medians["L2_only"], medians["noise_only_n3"]) - 0.05
