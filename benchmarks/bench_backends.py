"""Benchmark: fast vs reference compute backend.

Compares the two registered compute backends (:mod:`repro.nn.backend`) on
plain and stacked ensemble forwards of the three workload models and on one
stacked variant-grid training pass, checking tolerance-tested (not
bit-exact) agreement of the fast backend against the reference path, and
emits ``BENCH_backends.json``.

Run directly (``python benchmarks/bench_backends.py [output.json]``) or via
the CLI (``python -m repro bench --suite backends``); a pytest-benchmark
entry point is provided for the opt-in benchmark suite.  The speedup is
hardware-bound (threaded slab matmuls need cores), so the only gating
assertion is the tolerance agreement.
"""

from __future__ import annotations

import sys

DEFAULT_OUTPUT = "BENCH_backends.json"


def test_backends_agreement(benchmark):
    """Fast-vs-reference agreement and speedup (opt-in bench suite)."""
    from repro.analysis.backends_bench import run_backends_bench

    results = benchmark.pedantic(
        lambda: run_backends_bench(output=DEFAULT_OUTPUT),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["speedup"] = results["speedup"]
    benchmark.extra_info["threads"] = results["threads"]
    assert results["equivalent_within_tol"]


def main(argv: list[str]) -> int:
    from repro.analysis.backends_bench import (
        format_backends_bench_report,
        run_backends_bench,
    )

    output = argv[0] if argv else DEFAULT_OUTPUT
    results = run_backends_bench(output=output)
    print(format_backends_bench_report(results))
    print(f"\nwrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
