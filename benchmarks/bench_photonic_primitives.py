"""Ablation E-A2: photonic primitive costs (EO vs TO tuning, VDP fidelity, power).

Covers the device-level numbers quoted in the paper's §II.B (EO tuning is
faster and cheaper but short-range; TO tuning covers a full FSR at much higher
power) and the accelerator-level power budget of the CrossLight-style
configuration, plus the computational fidelity of the signal-level VDP unit.
"""

from __future__ import annotations

import numpy as np

from repro.accelerator.config import AcceleratorConfig
from repro.accelerator.power import PowerModel
from repro.accelerator.signal_sim import SignalLevelSimulator


def test_tuning_circuit_cost_comparison(benchmark):
    """EO vs TO power/energy for representative resonance shifts."""
    model = PowerModel(AcceleratorConfig.paper_config())

    def run():
        return {
            "small_shift": model.tuning_energy_comparison(0.2),
            "large_shift": model.tuning_energy_comparison(3.0),
            "power_report": model.report().as_dict(),
        }

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    small = result["small_shift"]
    print()
    print(f"EO  0.2 nm: {small['eo_power_w'] * 1e6:.2f} uW, {small['eo_energy_j']:.3e} J")
    print(f"TO  0.2 nm: {small['to_power_w'] * 1e3:.3f} mW, {small['to_energy_j']:.3e} J")
    print(f"Total accelerator power: {result['power_report']['total_w']:.1f} W")

    benchmark.extra_info["eo_power_uw_per_0.2nm"] = small["eo_power_w"] * 1e6
    benchmark.extra_info["to_power_mw_per_0.2nm"] = small["to_power_w"] * 1e3
    benchmark.extra_info["total_power_w"] = result["power_report"]["total_w"]

    # §II.B shape: EO tuning is orders of magnitude cheaper and faster for the
    # small shifts used during signal actuation.
    assert small["eo_power_w"] < small["to_power_w"] / 100
    assert small["eo_energy_j"] < small["to_energy_j"]


def test_signal_level_vdp_fidelity(benchmark):
    """Relative error of the optical dot product vs the exact result."""
    sim = SignalLevelSimulator(16)
    rng = np.random.default_rng(0)
    operands = [(rng.random(16), rng.random(16)) for _ in range(20)]

    def run():
        errors = []
        for a, w in operands:
            exact = float(a @ w)
            optical = sim.dot(a, w)
            errors.append(abs(optical - exact) / max(exact, 1e-9))
        return float(np.mean(errors)), float(np.max(errors))

    mean_error, max_error = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"VDP fidelity over 20 random products: mean {mean_error:.3%}, max {max_error:.3%}")
    benchmark.extra_info["mean_relative_error"] = mean_error
    benchmark.extra_info["max_relative_error"] = max_error
    assert mean_error < 0.05
