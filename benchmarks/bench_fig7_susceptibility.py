"""Benchmark E-F7: regenerate the Fig. 7 susceptibility series.

The paper evaluates actuation and hotspot attacks at 1/5/10% intensity on the
CONV block, the FC block and both blocks, with 10 random placements each, for
the three CNN workloads.  The benchmark uses the same grid with fewer random
placements so a full run stays laptop-sized; pass ``--placements`` through the
``REPRO_FIG7_PLACEMENTS`` environment variable to raise it back to 10.
"""

from __future__ import annotations

import os

import pytest

from repro.analysis.reporting import format_fig7_table
from repro.analysis.susceptibility import SusceptibilityConfig, SusceptibilityStudy

_PLACEMENTS = int(os.environ.get("REPRO_FIG7_PLACEMENTS", "2"))


@pytest.mark.parametrize("model_name", ["cnn_mnist", "resnet18", "vgg16_variant"])
def test_fig7_susceptibility(benchmark, model_name, trained_workloads, accelerator_config):
    """Attacked accuracy across the attack grid for one workload (one Fig. 7 panel)."""
    model, split = trained_workloads[model_name]
    config = SusceptibilityConfig(
        model_names=(model_name,),
        num_placements=_PLACEMENTS,
        accelerator=accelerator_config,
        seed=0,
    )
    study = SusceptibilityStudy(config)

    def run():
        return study.run(prepared={model_name: (model, split)})

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(format_fig7_table(result, model_name))

    baseline = result.baselines[model_name]
    benchmark.extra_info["baseline"] = baseline
    benchmark.extra_info["worst_drop_hotspot"] = result.worst_case_drop(model_name, "hotspot")
    benchmark.extra_info["worst_drop_actuation"] = result.worst_case_drop(model_name, "actuation")

    # Paper-shape checks: accuracy degrades as the attacked fraction grows and
    # hotspot attacks are at least as damaging as actuation attacks.
    small = result.accuracies_for(model_name, fraction=0.01).mean()
    large = result.accuracies_for(model_name, fraction=0.10).mean()
    assert large <= small + 0.05
    hotspot = result.accuracies_for(model_name, kind="hotspot", fraction=0.10).mean()
    actuation = result.accuracies_for(model_name, kind="actuation", fraction=0.10).mean()
    assert hotspot <= actuation + 0.05
