"""Benchmark E-F7: regenerate the Fig. 7 susceptibility series via the engine.

The paper evaluates actuation and hotspot attacks at 1/5/10% intensity on the
CONV block, the FC block and both blocks, with 10 random placements each, for
the three CNN workloads.  The scenario grid is driven through the campaign
engine (:mod:`repro.engine`) as a sweep of ``fig7_point`` runs: the first
pass fans the grid out across a process pool (each worker trains the workload
once and evaluates many points), the second pass must complete entirely from
the result cache.  Pass ``--placements`` through the
``REPRO_FIG7_PLACEMENTS`` environment variable to raise it back to 10.
"""

from __future__ import annotations

import os

import pytest

from repro.engine import Campaign, SweepSpec

_PLACEMENTS = int(os.environ.get("REPRO_FIG7_PLACEMENTS", "2"))
_WORKERS = int(os.environ.get("REPRO_FIG7_WORKERS", "4"))
_FRACTIONS = (0.01, 0.05, 0.10)


def _grid(model_name: str) -> SweepSpec:
    return SweepSpec(
        experiment_id="fig7_point",
        base={"model": model_name},
        grid={
            "kind": ["actuation", "hotspot"],
            "block": ["conv", "fc", "both"],
            "fraction": list(_FRACTIONS),
            "placement": list(range(_PLACEMENTS)),
        },
    )


def _accuracies(payloads, **filters) -> list[float]:
    return [
        p["accuracy"]
        for p in payloads
        if all(p[key] == value for key, value in filters.items())
    ]


@pytest.mark.parametrize("model_name", ["cnn_mnist", "resnet18", "vgg16_variant"])
def test_fig7_susceptibility(benchmark, model_name, tmp_path):
    """Attacked accuracy across the attack grid for one workload (one Fig. 7 panel)."""
    sweep = _grid(model_name)
    cache_dir = tmp_path / "campaign-cache"

    def run():
        return Campaign(sweep, cache=cache_dir, workers=_WORKERS).run()

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    assert result.failures == 0
    assert result.executed == sweep.num_points

    payloads = result.payloads
    baseline = payloads[0]["baseline"]
    worst = {
        kind: baseline - min(_accuracies(payloads, kind=kind))
        for kind in ("hotspot", "actuation")
    }
    print()
    print(f"Fig. 7 ({model_name}): baseline {baseline:.3f}, "
          f"worst drops {worst} over {len(payloads)} grid points")
    benchmark.extra_info["baseline"] = baseline
    benchmark.extra_info["worst_drop_hotspot"] = worst["hotspot"]
    benchmark.extra_info["worst_drop_actuation"] = worst["actuation"]
    benchmark.extra_info["campaign"] = result.summary()

    # A second campaign over the same grid must be served from the cache.
    cached = Campaign(sweep, cache=cache_dir, workers=_WORKERS).run()
    assert cached.executed == 0
    assert cached.cache_hits == sweep.num_points
    assert [dict(r.payload) for r in cached.records] == [
        dict(r.payload) for r in result.records
    ]
    benchmark.extra_info["cached_rerun_s"] = cached.duration_s

    # Paper-shape checks: accuracy degrades as the attacked fraction grows and
    # hotspot attacks are at least as damaging as actuation attacks.
    small = sum(_accuracies(payloads, fraction=0.01)) / (len(payloads) // 3)
    large = sum(_accuracies(payloads, fraction=0.10)) / (len(payloads) // 3)
    assert large <= small + 0.05
    hotspot = _accuracies(payloads, kind="hotspot", fraction=0.10)
    actuation = _accuracies(payloads, kind="actuation", fraction=0.10)
    assert sum(hotspot) / len(hotspot) <= sum(actuation) / len(actuation) + 0.05
