"""Benchmark: seed object path vs the vectorized signal array-core.

Times a 64x64 signal-level matrix-vector product and a 1000-trial
thermal-attack Monte-Carlo sweep on both device-simulation paths (the seed
per-ring-object implementation preserved in :mod:`repro.photonics.legacy`,
and the struct-of-arrays core in :mod:`repro.photonics.bank_array`), checks
they agree to 1e-9, and emits ``BENCH_signal_core.json``.

Run directly (``python benchmarks/bench_signal_core.py [output.json]``) or
via the CLI (``python -m repro bench``); a pytest-benchmark entry point is
provided for the opt-in benchmark suite.  The acceptance floors are >=20x on
the matvec and >=50x on the Monte-Carlo sweep.
"""

from __future__ import annotations

import sys

DEFAULT_OUTPUT = "BENCH_signal_core.json"


def test_signal_core_speedups(benchmark):
    """Array-core speedups over the seed object path (opt-in bench suite)."""
    from repro.analysis.signal_bench import run_signal_core_bench

    results = benchmark.pedantic(
        lambda: run_signal_core_bench(output=DEFAULT_OUTPUT),
        rounds=1,
        iterations=1,
    )
    benchmark.extra_info["matvec_speedup"] = results["matvec"]["speedup_array_vs_seed"]
    benchmark.extra_info["mc_speedup"] = results["monte_carlo"]["speedup_array_vs_seed"]
    assert results["equivalent_within_tol"]
    assert results["matvec"]["speedup_array_vs_seed"] >= 20.0
    assert results["monte_carlo"]["speedup_array_vs_seed"] >= 50.0


def main(argv: list[str]) -> int:
    from repro.analysis.signal_bench import format_bench_report, run_signal_core_bench

    output = argv[0] if argv else DEFAULT_OUTPUT
    results = run_signal_core_bench(output=output)
    print(format_bench_report(results))
    print(f"\nwrote {output}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main(sys.argv[1:]))
