"""Benchmark E-F6: regenerate the Fig. 6 hotspot heatmap on the CONV block."""

from __future__ import annotations

import numpy as np

from repro.accelerator.config import AcceleratorConfig
from repro.thermal import Floorplan, simulate_hotspot_attack


def test_fig6_conv_block_hotspot_heatmap(benchmark):
    """Two attacked banks with overdriven heaters on the paper-scale CONV block."""
    config = AcceleratorConfig.paper_config()
    geometry = config.conv_block
    floorplan = Floorplan(num_banks=geometry.num_banks, banks_per_row=geometry.rows)
    attacked = [650, 1260]  # two banks in different regions of the block

    def run():
        return simulate_hotspot_attack(floorplan, attacked_banks=attacked)

    result = benchmark.pedantic(run, rounds=1, iterations=1)
    print()
    print(f"Fig. 6: peak temperature rise {result.peak_rise_k:.1f} K "
          f"(ambient {result.ambient_k:.0f} K)")
    print(result.ascii_heatmap(width=72))
    benchmark.extra_info["peak_rise_k"] = result.peak_rise_k
    benchmark.extra_info["banks_above_5k"] = len(result.affected_banks(5.0))

    # Qualitative shape: attacked banks are among the hottest banks (their
    # exact rise depends on floorplan position) and the hotspot is localized
    # (it does not cover the whole block).
    rises = result.bank_temperature_rise_k
    hottest = set(np.argsort(rises)[-5:].tolist())
    assert set(attacked).issubset(hottest)
    assert all(rises[b] > 10.0 for b in attacked)
    assert len(result.affected_banks(5.0)) < geometry.num_banks / 4


def test_fig6_repeated_power_maps_reuse_factorization(benchmark):
    """Repeated solves over different power maps (the sweep-common case).

    The first solve on a grid shape pays for the sparse LU factorization;
    every later power map reuses it, which is what makes large hotspot
    sweeps tractable.
    """
    import time

    from repro.thermal import GridThermalSolver, ThermalSolverConfig

    solver = GridThermalSolver(ThermalSolverConfig(grid_rows=96, grid_cols=96))
    rng = np.random.default_rng(0)
    power_maps = rng.uniform(0.0, 0.01, size=(16, 96, 96))

    start = time.perf_counter()
    solver.solve(power_maps[0])
    first_s = time.perf_counter() - start

    def run():
        for power in power_maps:
            solver.solve(power)

    benchmark.pedantic(run, rounds=1, iterations=1)
    repeat_s = (time.perf_counter() - start - first_s) / len(power_maps)
    benchmark.extra_info["first_solve_s"] = first_s
    benchmark.extra_info["repeat_solve_s"] = repeat_s
    benchmark.extra_info["factorization_speedup"] = first_s / max(repeat_s, 1e-12)
    print(f"\nfirst solve {first_s*1e3:.1f} ms, repeated {repeat_s*1e3:.2f} ms "
          f"(x{first_s / max(repeat_s, 1e-12):.1f} from reused factorization)")
    # The reused factorization must make repeated solves much cheaper than
    # the factorizing first solve (conservative 2x bound for noisy CI boxes).
    assert repeat_s < first_s / 2
